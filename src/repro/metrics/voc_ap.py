"""PASCAL VOC average-precision evaluation.

Implements both the classic 11-point interpolated AP (VOC2007 devkit, the
protocol behind every mAP number in the paper) and the all-point variant
(VOC2010+/COCO-style area under the interpolated PR curve).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.detection.boxes import iou_matrix
from repro.detection.types import Detections, GroundTruth
from repro.errors import ConfigurationError

__all__ = [
    "PRCurve",
    "EvalResult",
    "voc_ap_from_pr",
    "precision_recall_curve",
    "evaluate_detections",
    "mean_average_precision",
]


@dataclass(frozen=True)
class PRCurve:
    """A precision/recall curve for one class, sorted by descending score."""

    recall: np.ndarray
    precision: np.ndarray
    scores: np.ndarray
    num_gt: int

    def ap(self, *, use_07_metric: bool = True) -> float:
        """Average precision of this curve."""
        return voc_ap_from_pr(
            self.recall, self.precision, use_07_metric=use_07_metric
        )


@dataclass(frozen=True)
class EvalResult:
    """Full evaluation of one detector over one dataset split."""

    per_class_ap: dict[int, float]
    per_class_curves: dict[int, PRCurve] = field(repr=False)
    use_07_metric: bool = True

    @property
    def map(self) -> float:
        """Mean average precision over classes that have ground truth."""
        if not self.per_class_ap:
            return 0.0
        return float(np.mean(list(self.per_class_ap.values())))

    @property
    def map_percent(self) -> float:
        """mAP expressed in percent, as the paper's tables report it."""
        return 100.0 * self.map


def voc_ap_from_pr(
    recall: np.ndarray, precision: np.ndarray, *, use_07_metric: bool = True
) -> float:
    """Average precision from a PR curve.

    With ``use_07_metric`` the 11-point interpolation of the VOC2007 devkit
    is used (mean of interpolated precision at recall 0, 0.1, ..., 1.0);
    otherwise the exact area under the monotonised curve.
    """
    recall = np.asarray(recall, dtype=np.float64).reshape(-1)
    precision = np.asarray(precision, dtype=np.float64).reshape(-1)
    if recall.shape != precision.shape:
        raise ConfigurationError("recall and precision must have equal length")
    if recall.size == 0:
        return 0.0
    if use_07_metric:
        ap = 0.0
        for point in np.linspace(0.0, 1.0, 11):
            mask = recall >= point
            p = float(precision[mask].max()) if mask.any() else 0.0
            ap += p / 11.0
        return ap
    # All-point metric: monotonise precision from the right, then integrate.
    mrec = np.concatenate([[0.0], recall, [1.0]])
    mpre = np.concatenate([[0.0], precision, [0.0]])
    for i in range(mpre.size - 2, -1, -1):
        mpre[i] = max(mpre[i], mpre[i + 1])
    changes = np.flatnonzero(mrec[1:] != mrec[:-1]) + 1
    return float(np.sum((mrec[changes] - mrec[changes - 1]) * mpre[changes]))


def precision_recall_curve(
    detections: list[Detections],
    truths: list[GroundTruth],
    label: int,
    *,
    iou_threshold: float = 0.5,
) -> PRCurve:
    """Dataset-wide PR curve for one class.

    Pools every detection of class ``label`` across images, sorts by score,
    and greedily matches against unclaimed ground truth per the VOC protocol.
    """
    if len(detections) != len(truths):
        raise ConfigurationError(
            f"got {len(detections)} detection sets for {len(truths)} images"
        )
    num_gt = 0
    gt_boxes_per_image: list[np.ndarray] = []
    pooled_scores: list[np.ndarray] = []
    pooled_images: list[np.ndarray] = []
    pooled_boxes: list[np.ndarray] = []
    for img_idx, (dets, truth) in enumerate(zip(detections, truths)):
        gt_boxes = truth.boxes[truth.labels == label]
        gt_boxes_per_image.append(gt_boxes)
        num_gt += int(gt_boxes.shape[0])
        mask = dets.labels == label
        if mask.any():
            pooled_scores.append(dets.scores[mask])
            pooled_boxes.append(dets.boxes[mask])
            pooled_images.append(np.full(int(mask.sum()), img_idx, dtype=np.int64))
    if not pooled_scores:
        return PRCurve(
            recall=np.zeros(0), precision=np.zeros(0), scores=np.zeros(0), num_gt=num_gt
        )
    scores = np.concatenate(pooled_scores)
    boxes = np.concatenate(pooled_boxes, axis=0)
    images = np.concatenate(pooled_images)
    order = np.argsort(-scores, kind="stable")
    scores, boxes, images = scores[order], boxes[order], images[order]

    claimed = [np.zeros(g.shape[0], dtype=bool) for g in gt_boxes_per_image]
    tp_flags = np.zeros(scores.shape[0], dtype=bool)
    for rank in range(scores.shape[0]):
        img_idx = int(images[rank])
        gt_boxes = gt_boxes_per_image[img_idx]
        if gt_boxes.shape[0] == 0:
            continue
        ious = iou_matrix(boxes[rank : rank + 1], gt_boxes)[0]
        ious[claimed[img_idx]] = 0.0
        best = int(np.argmax(ious))
        if ious[best] >= iou_threshold:
            claimed[img_idx][best] = True
            tp_flags[rank] = True

    tp_cum = np.cumsum(tp_flags)
    fp_cum = np.cumsum(~tp_flags)
    recall = tp_cum / num_gt if num_gt > 0 else np.zeros(scores.shape[0])
    precision = tp_cum / np.maximum(tp_cum + fp_cum, 1)
    return PRCurve(recall=recall, precision=precision, scores=scores, num_gt=num_gt)


def evaluate_detections(
    detections: list[Detections],
    truths: list[GroundTruth],
    num_classes: int,
    *,
    iou_threshold: float = 0.5,
    use_07_metric: bool = True,
) -> EvalResult:
    """Evaluate a detector over a split: per-class AP and mAP.

    Classes with no ground-truth instances in the split are skipped, matching
    the VOC devkit behaviour.
    """
    per_class_ap: dict[int, float] = {}
    per_class_curves: dict[int, PRCurve] = {}
    for label in range(num_classes):
        curve = precision_recall_curve(
            detections, truths, label, iou_threshold=iou_threshold
        )
        if curve.num_gt == 0:
            continue
        per_class_curves[label] = curve
        per_class_ap[label] = curve.ap(use_07_metric=use_07_metric)
    return EvalResult(
        per_class_ap=per_class_ap,
        per_class_curves=per_class_curves,
        use_07_metric=use_07_metric,
    )


def mean_average_precision(
    detections: list[Detections],
    truths: list[GroundTruth],
    num_classes: int,
    *,
    iou_threshold: float = 0.5,
    use_07_metric: bool = True,
) -> float:
    """Convenience wrapper returning the mAP in percent."""
    result = evaluate_detections(
        detections,
        truths,
        num_classes,
        iou_threshold=iou_threshold,
        use_07_metric=use_07_metric,
    )
    return result.map_percent
