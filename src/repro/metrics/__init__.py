"""Evaluation substrate: VOC AP/mAP, counting, classification, latency,
rolling online stream quality."""

from repro.metrics.classify import BinaryMetrics, binary_metrics, confusion_counts
from repro.metrics.counting import CountSummary, count_detected_objects, count_summary
from repro.metrics.latency import LatencySummary, summarize_latencies
from repro.metrics.rolling import RollingWindow, rolling_quality, verdict_miss_rates
from repro.metrics.voc_ap import (
    EvalResult,
    PRCurve,
    evaluate_detections,
    mean_average_precision,
    precision_recall_curve,
    voc_ap_from_pr,
)

__all__ = [
    "BinaryMetrics",
    "binary_metrics",
    "confusion_counts",
    "CountSummary",
    "count_detected_objects",
    "count_summary",
    "LatencySummary",
    "summarize_latencies",
    "RollingWindow",
    "rolling_quality",
    "verdict_miss_rates",
    "EvalResult",
    "PRCurve",
    "evaluate_detections",
    "mean_average_precision",
    "precision_recall_curve",
    "voc_ap_from_pr",
]
