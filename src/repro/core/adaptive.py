"""Budget-constrained and adaptive discrimination.

Two extensions of the paper's static threshold model that a production
deployment needs:

* :func:`fit_for_budget` — instead of maximising accuracy (Sec. V.D), pick
  the count/area thresholds that maximise difficult-case *recall subject to
  an upload-ratio budget*.  This turns the discriminator into a family of
  operating points: give it the bandwidth you can afford and it catches as
  many difficult cases as that budget allows (the mechanism behind the
  Figs. 8-9 trade-off curves).
* :class:`BudgetController` — an online integral controller that nudges the
  area threshold while a stream is being served so the *realised* upload
  ratio tracks a target even when scene statistics drift (day/night,
  crowded/quiet periods).  The paper's thresholds are fit once offline;
  this keeps them honest in deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.discriminator import DifficultCaseDiscriminator
from repro.core.thresholds import decide_rule
from repro.errors import CalibrationError, ConfigurationError
from repro.metrics.classify import binary_metrics

__all__ = ["BudgetFit", "fit_for_budget", "BudgetController"]


@dataclass(frozen=True)
class BudgetFit:
    """Result of a budget-constrained threshold search."""

    count_threshold: int
    area_threshold: float
    expected_upload_ratio: float
    recall: float
    precision: float


def fit_for_budget(
    n_predict: np.ndarray,
    n_estimated: np.ndarray,
    min_area: np.ndarray,
    difficult_labels: np.ndarray,
    upload_budget: float,
    *,
    count_grid: np.ndarray | None = None,
    area_grid: np.ndarray | None = None,
) -> BudgetFit:
    """Maximise difficult-case recall subject to an upload-ratio budget.

    All feature arrays are the *estimated* (deployed) features on a training
    split.  Among threshold pairs whose predicted upload ratio stays within
    ``upload_budget``, the pair with the highest recall wins; precision
    breaks ties.  Raises when even the most conservative pair exceeds the
    budget (i.e. the uncertainty gate alone uploads too much).
    """
    if not 0.0 < upload_budget <= 1.0:
        raise ConfigurationError(f"upload_budget must be in (0, 1], got {upload_budget}")
    counts = np.arange(0, 12) if count_grid is None else np.asarray(count_grid)
    areas = np.round(np.arange(0.0, 0.62, 0.01), 2) if area_grid is None else np.asarray(area_grid, dtype=np.float64)
    labels = np.asarray(difficult_labels, dtype=bool)
    best: BudgetFit | None = None
    for count_threshold in counts:
        for area_threshold in areas:
            verdicts = decide_rule(
                n_predict,
                n_estimated,
                min_area,
                int(count_threshold),
                float(area_threshold),
            )
            ratio = float(np.mean(verdicts))
            if ratio > upload_budget:
                continue
            metrics = binary_metrics(verdicts, labels)
            candidate = BudgetFit(
                count_threshold=int(count_threshold),
                area_threshold=float(area_threshold),
                expected_upload_ratio=ratio,
                recall=metrics.recall,
                precision=metrics.precision,
            )
            if best is None or (candidate.recall, candidate.precision) > (best.recall, best.precision):
                best = candidate
    if best is None:
        raise CalibrationError(f"no threshold pair fits within an upload budget of {upload_budget:.2f}")
    return best


class BudgetController:
    """Online integral controller tracking a target upload ratio.

    Wraps a fitted :class:`DifficultCaseDiscriminator` and adjusts its area
    threshold after every decision:

    ``area += gain * (target - realised_ratio)``

    A higher area threshold uploads more (more images fail the "too small"
    test), so the sign is positive.  The realised ratio is tracked with an
    exponential moving average, making the controller robust to drift in
    the scene distribution.
    """

    def __init__(
        self,
        discriminator: DifficultCaseDiscriminator,
        target_ratio: float,
        *,
        gain: float = 0.05,
        ema_halflife: int = 50,
        area_bounds: tuple[float, float] = (0.0, 0.8),
    ) -> None:
        if not 0.0 < target_ratio < 1.0:
            raise ConfigurationError("target_ratio must be in (0, 1)")
        if gain <= 0.0:
            raise ConfigurationError("gain must be positive")
        if ema_halflife < 1:
            raise ConfigurationError("ema_halflife must be >= 1")
        lo, hi = area_bounds
        if not 0.0 <= lo < hi:
            raise ConfigurationError("invalid area bounds")
        self._initial = discriminator
        self._initial_target = target_ratio
        self._discriminator = discriminator
        self.target_ratio = target_ratio
        self.gain = gain
        self._alpha = 1.0 - 0.5 ** (1.0 / ema_halflife)
        self._bounds = area_bounds
        self._ema = target_ratio
        self.decisions = 0
        self.uploads = 0

    def reset(self) -> None:
        """Forget all adaptation: behave as freshly constructed.

        Restores the discriminator, target ratio and EMA to their
        construction-time values and zeroes the decision counters, so the
        same controller can be reused across independent runs without
        leaking threshold state between them.
        """
        self._discriminator = self._initial
        self.target_ratio = self._initial_target
        self._ema = self._initial_target
        self.decisions = 0
        self.uploads = 0

    @property
    def discriminator(self) -> DifficultCaseDiscriminator:
        """The currently adapted discriminator."""
        return self._discriminator

    @property
    def realised_ratio(self) -> float:
        """Total uploads / total decisions so far."""
        if self.decisions == 0:
            return 0.0
        return self.uploads / self.decisions

    def decide(self, detections) -> bool:
        """Decide one image and adapt the area threshold."""
        verdict = self._discriminator.decide(detections)
        self.decisions += 1
        self.uploads += int(verdict)
        self._ema = (1.0 - self._alpha) * self._ema + self._alpha * float(verdict)
        error = self.target_ratio - self._ema
        new_area = float(
            np.clip(
                self._discriminator.area_threshold + self.gain * error,
                self._bounds[0],
                self._bounds[1],
            )
        )
        self._discriminator = replace(self._discriminator, area_threshold=new_area)
        return verdict
