"""Semantic feature extraction from preliminary detections (Sec. V.C.1).

The discriminator never looks at pixels or CNN features — only at the small
model's raw output.  Two semantics are estimated per image:

* the **estimated number of objects**: boxes surviving the fitted
  noise-filter confidence threshold (0.15-0.35 in the paper — far below the
  0.5 serving threshold, so missed-but-noticed objects are counted);
* the **estimated minimum object area ratio** among those boxes.

Alongside them travels ``n_predict``, the number of boxes the small model
would actually serve (>= 0.5), because step 1 of the decision procedure
compares it with the estimated count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cases import SERVING_THRESHOLD
from repro.detection.batch import DetectionBatch
from repro.detection.types import Detections
from repro.errors import ConfigurationError

__all__ = ["CaseFeatures", "extract_features", "extract_feature_arrays"]


@dataclass(frozen=True)
class CaseFeatures:
    """Discriminator inputs for one image."""

    image_id: str
    n_predict: int
    n_estimated: int
    min_area_estimated: float

    @property
    def all_detected(self) -> bool:
        """Step-1 signal: did filtering change the object count at all?"""
        return self.n_predict == self.n_estimated


def extract_features(
    detections: Detections,
    noise_threshold: float,
    *,
    serving_threshold: float = SERVING_THRESHOLD,
) -> CaseFeatures:
    """Compute one image's :class:`CaseFeatures` from its raw detections."""
    if not 0.0 < noise_threshold <= serving_threshold:
        raise ConfigurationError(f"noise_threshold must lie in (0, {serving_threshold}], " f"got {noise_threshold}")
    return CaseFeatures(
        image_id=detections.image_id,
        n_predict=detections.count_above(serving_threshold),
        n_estimated=detections.count_above(noise_threshold),
        min_area_estimated=detections.min_area_above(noise_threshold),
    )


def extract_feature_arrays(
    detections: DetectionBatch | list[Detections],
    noise_threshold: float,
    *,
    serving_threshold: float = SERVING_THRESHOLD,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised features for a split.

    Accepts a :class:`DetectionBatch` (the fast path — three array passes
    over the flat score/box arrays) or a ``list[Detections]``, which is
    concatenated first.  Returns ``(n_predict, n_estimated,
    min_area_estimated)`` arrays aligned with the input.
    """
    if not 0.0 < noise_threshold <= serving_threshold:
        raise ConfigurationError(f"noise_threshold must lie in (0, {serving_threshold}], " f"got {noise_threshold}")
    batch = DetectionBatch.coerce(detections)
    return (
        batch.count_above(serving_threshold),
        batch.count_above(noise_threshold),
        batch.min_area_above(noise_threshold),
    )
