"""Threshold calibration for the discriminator (Sec. V.D).

Three thresholds are fit on the training split:

1. **noise-filter confidence threshold** — minimises the paper's Eq. 1 loss
   ``L = |N_predict - N_truth|`` summed over training images, where
   ``N_predict(t)`` is the number of small-model boxes scoring at least
   ``t``.  The optimum separates noise boxes (exponential tail near 0) from
   the sub-threshold boxes of missed objects (0.1-0.45).
2. **object-count threshold** and 3. **minimum-area-ratio threshold** — a
   grid search maximising the accuracy of the three-step decision rule
   against the difficult-case labels.  Following the paper, the *true*
   object count and minimum area ratio are fed to the rule during fitting
   ("we input the true number of objects and minimum object area ratio into
   the discriminator here, instead of the estimated values").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detection.batch import DetectionBatch, GroundTruthBatch
from repro.detection.types import Detections, GroundTruth
from repro.errors import CalibrationError
from repro.metrics.classify import BinaryMetrics, binary_metrics

__all__ = [
    "ThresholdFit",
    "fit_confidence_threshold",
    "count_loss_curve",
    "decide_rule",
    "fit_decision_thresholds",
    "area_threshold_sweep",
]

#: Default search grid for the noise-filter confidence threshold.
_CONFIDENCE_GRID = np.round(np.arange(0.05, 0.51, 0.01), 2)

#: Default grids for the decision thresholds.
_COUNT_GRID = np.arange(1, 9)
_AREA_GRID = np.round(np.arange(0.0, 0.52, 0.01), 2)


@dataclass(frozen=True)
class ThresholdFit:
    """Result of the full three-threshold calibration."""

    confidence_threshold: float
    count_threshold: int
    area_threshold: float
    train_metrics: BinaryMetrics


def count_loss_curve(
    detections: DetectionBatch | list[Detections],
    truths: GroundTruthBatch | list[GroundTruth],
    grid: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Eq. 1 loss ``sum_images |N_predict(t) - N_truth|`` over a grid of t.

    Per-image counts at every grid point come from threshold passes over the
    batch's flat score array (true counts straight off the ground-truth
    batch's offsets); the losses are integer sums, so the result is
    independent of accumulation order.
    """
    gt = GroundTruthBatch.coerce(truths)
    if len(detections) != len(gt):
        raise CalibrationError(f"got {len(detections)} detection sets for {len(gt)} truths")
    thresholds = _CONFIDENCE_GRID if grid is None else np.asarray(grid, dtype=np.float64)
    if thresholds.size == 0:
        raise CalibrationError("empty confidence-threshold grid")
    batch = DetectionBatch.coerce(detections)
    n_truth = gt.counts()
    losses = np.zeros(thresholds.size)
    for index, threshold in enumerate(thresholds):
        counts = batch.count_above(float(threshold))
        losses[index] = np.abs(counts - n_truth).sum()
    return thresholds, losses


def fit_confidence_threshold(
    detections: DetectionBatch | list[Detections],
    truths: GroundTruthBatch | list[GroundTruth],
    grid: np.ndarray | None = None,
) -> float:
    """The noise-filter threshold minimising the Eq. 1 count loss."""
    thresholds, losses = count_loss_curve(detections, truths, grid)
    return float(thresholds[int(np.argmin(losses))])


def decide_rule(
    n_predict: np.ndarray,
    n_estimated: np.ndarray,
    min_area: np.ndarray,
    count_threshold: int,
    area_threshold: float,
) -> np.ndarray:
    """The paper's three-step decision, vectorised.  True = difficult.

    1. ``n_predict == n_estimated``  -> easy (everything detected);
    2. else ``n_estimated > count_threshold`` -> difficult (too many objects);
    3. else ``min_area < area_threshold``     -> difficult (too small);
       otherwise easy.

    ``DifficultCaseDiscriminator.decide`` carries a scalar transcription of
    this rule for single-image serving — change both together.
    """
    n_predict = np.asarray(n_predict)
    n_estimated = np.asarray(n_estimated)
    min_area = np.asarray(min_area)
    uncertain = n_predict != n_estimated
    return uncertain & ((n_estimated > count_threshold) | (min_area < area_threshold))


def fit_decision_thresholds(
    n_predict: np.ndarray,
    true_counts: np.ndarray,
    true_min_areas: np.ndarray,
    difficult_labels: np.ndarray,
    *,
    count_grid: np.ndarray | None = None,
    area_grid: np.ndarray | None = None,
    accuracy_tolerance: float = 0.015,
) -> tuple[int, float, BinaryMetrics]:
    """Grid-search the count and area thresholds (Sec. V.D).

    Per the paper, the rule is evaluated with the *true* count and minimum
    area ratio during fitting, "when the accuracy reaches the top".  Among
    grid points within ``accuracy_tolerance`` of the best accuracy, the
    recall-maximal one is selected (precision breaks remaining ties): the
    paper's own optimum sits at 98.24 % recall because missing a difficult
    case costs end-to-end accuracy while uploading an easy one only costs
    bandwidth.
    """
    counts = _COUNT_GRID if count_grid is None else np.asarray(count_grid)
    areas = _AREA_GRID if area_grid is None else np.asarray(area_grid, dtype=np.float64)
    if counts.size == 0 or areas.size == 0:
        raise CalibrationError("empty decision-threshold grid")
    if accuracy_tolerance < 0.0:
        raise CalibrationError("accuracy_tolerance must be >= 0")
    labels = np.asarray(difficult_labels, dtype=bool)
    candidates: list[tuple[BinaryMetrics, int, float]] = []
    for count_threshold in counts:
        for area_threshold in areas:
            predicted = decide_rule(
                n_predict,
                true_counts,
                true_min_areas,
                int(count_threshold),
                float(area_threshold),
            )
            metrics = binary_metrics(predicted, labels)
            candidates.append((metrics, int(count_threshold), float(area_threshold)))
    top_accuracy = max(metrics.accuracy for metrics, _, _ in candidates)
    admissible = [entry for entry in candidates if entry[0].accuracy >= top_accuracy - accuracy_tolerance]
    best_metrics, best_count, best_area = max(
        admissible,
        key=lambda entry: (entry[0].recall, entry[0].precision, entry[0].accuracy),
    )
    return best_count, best_area, best_metrics


def area_threshold_sweep(
    n_predict: np.ndarray,
    true_counts: np.ndarray,
    true_min_areas: np.ndarray,
    difficult_labels: np.ndarray,
    *,
    count_threshold: int = 2,
    area_grid: np.ndarray | None = None,
) -> list[dict[str, float]]:
    """Fig. 7: discriminator metrics as the area threshold sweeps.

    The count threshold is held at the paper's optimum (2) and each grid
    point's accuracy / precision / recall / F1 is reported.
    """
    areas = _AREA_GRID if area_grid is None else np.asarray(area_grid, dtype=np.float64)
    labels = np.asarray(difficult_labels, dtype=bool)
    rows: list[dict[str, float]] = []
    for area_threshold in areas:
        predicted = decide_rule(
            n_predict,
            true_counts,
            true_min_areas,
            count_threshold,
            float(area_threshold),
        )
        metrics = binary_metrics(predicted, labels)
        rows.append(
            {
                "area_threshold": float(area_threshold),
                "accuracy": metrics.accuracy,
                "precision": metrics.precision,
                "recall": metrics.recall,
                "f1": metrics.f1,
            }
        )
    return rows
