"""The paper's contribution: difficult-case discriminator + small-big system."""

from repro.core.adaptive import BudgetController, BudgetFit, fit_for_budget
from repro.core.cases import SERVING_THRESHOLD, is_difficult_case, label_cases
from repro.core.discriminator import (
    DifficultCaseDiscriminator,
    DiscriminatorFitReport,
    DiscriminatorPolicy,
)
from repro.core.features import CaseFeatures, extract_feature_arrays, extract_features
from repro.core.system import SmallBigSystem, SystemRun
from repro.core.thresholds import (
    ThresholdFit,
    area_threshold_sweep,
    count_loss_curve,
    decide_rule,
    fit_confidence_threshold,
    fit_decision_thresholds,
)

__all__ = [
    "BudgetController",
    "BudgetFit",
    "fit_for_budget",
    "SERVING_THRESHOLD",
    "is_difficult_case",
    "label_cases",
    "DifficultCaseDiscriminator",
    "DiscriminatorFitReport",
    "DiscriminatorPolicy",
    "CaseFeatures",
    "extract_feature_arrays",
    "extract_features",
    "SmallBigSystem",
    "SystemRun",
    "ThresholdFit",
    "area_threshold_sweep",
    "count_loss_curve",
    "decide_rule",
    "fit_confidence_threshold",
    "fit_decision_thresholds",
]
