"""The small-big model system (Sec. III, Fig. 2).

``SmallBigSystem`` wires the three modules together: the small model and the
difficult-case discriminator at the edge, the big model in the cloud.  Easy
cases are served by the small model locally (flow 1-2-3-6); difficult cases
are uploaded and served by the big model (flow 1-2-3-4-5-6).

``run`` accepts precomputed detections so experiments can share cached model
outputs; when omitted, the detectors are invoked directly.  Because the
simulated detectors are deterministic per image, both paths yield identical
results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.cases import SERVING_THRESHOLD
from repro.core.discriminator import DifficultCaseDiscriminator
from repro.data.datasets import Dataset
from repro.detection.batch import DetectionBatch
from repro.detection.types import Detections
from repro.errors import ConfigurationError
from repro.metrics.counting import CountSummary, count_summary
from repro.metrics.voc_ap import mean_average_precision
from repro.simulate.detector import SimulatedDetector

__all__ = ["SystemRun", "SmallBigSystem"]


@dataclass(frozen=True)
class SystemRun:
    """Outcome of serving one split through the small-big system.

    ``small_detections``/``big_detections`` may be ``list[Detections]`` or
    :class:`DetectionBatch`; every metric is computed over batches (coerced
    once and cached), so the hot serving/evaluation path never loops over
    per-image containers.
    """

    dataset: Dataset
    uploaded: np.ndarray = field(repr=False)
    small_detections: DetectionBatch | list[Detections] = field(repr=False)
    big_detections: DetectionBatch | list[Detections] = field(repr=False)
    serving_threshold: float = SERVING_THRESHOLD

    def __post_init__(self) -> None:
        count = len(self.dataset)
        if not (self.uploaded.shape[0] == len(self.small_detections) == len(self.big_detections) == count):
            raise ConfigurationError("system run components are misaligned")
        object.__setattr__(self, "_batches", {})

    # ------------------------------------------------------------------ #
    # batch views (coerced lazily, cached per run)
    # ------------------------------------------------------------------ #
    def small_batch(self) -> DetectionBatch:
        """The small model's raw output as a batch."""
        return self._batch("small", lambda: DetectionBatch.coerce(self.small_detections))

    def big_batch(self) -> DetectionBatch:
        """The big model's raw output as a batch."""
        return self._batch("big", lambda: DetectionBatch.coerce(self.big_detections))

    def final_batch(self) -> DetectionBatch:
        """The served composition: big segments where uploaded, small
        elsewhere, merged with one vectorised gather."""
        return self._batch(
            "final",
            lambda: DetectionBatch.where(
                self.uploaded, self.big_batch(), self.small_batch()
            ),
        )

    def _batch(self, key: str, build) -> DetectionBatch:
        cache = self._batches
        if key not in cache:
            cache[key] = build()
        return cache[key]

    @property
    def final_detections(self) -> DetectionBatch | list[Detections]:
        """Per-image served output: big where uploaded, small elsewhere.

        Mirrors the input representation: batch inputs yield the merged
        batch; list inputs yield a list of the *original* per-image objects.
        """
        if isinstance(self.small_detections, DetectionBatch) and isinstance(self.big_detections, DetectionBatch):
            return self.final_batch()
        return [
            big if sent else small
            for small, big, sent in zip(
                self.small_detections,
                self.big_detections,
                self.uploaded,
            )
        ]

    @property
    def upload_ratio(self) -> float:
        """Fraction of images uploaded to the cloud."""
        if self.uploaded.shape[0] == 0:
            return 0.0
        return float(np.mean(self.uploaded))

    def _served_map(self, batch: DetectionBatch) -> float:
        return mean_average_precision(
            batch.above(self.serving_threshold),
            self.dataset.truth_batch,
            self.dataset.num_classes,
        )

    # ------------------------------------------------------------------ #
    # metrics (all measured over served boxes, the paper's protocol)
    # ------------------------------------------------------------------ #
    def end_to_end_map(self) -> float:
        """mAP (percent) of the system's served output."""
        return self._served_map(self.final_batch())

    def small_model_map(self) -> float:
        """mAP (percent) of the small model alone on this split."""
        return self._served_map(self.small_batch())

    def big_model_map(self) -> float:
        """mAP (percent) of the big model alone on this split."""
        return self._served_map(self.big_batch())

    def end_to_end_counts(self) -> CountSummary:
        """Detected-object count of the system's served output."""
        return count_summary(
            self.final_batch(),
            self.dataset.truth_batch,
            score_threshold=self.serving_threshold,
        )

    def small_model_counts(self) -> CountSummary:
        """Detected-object count of the small model alone."""
        return count_summary(
            self.small_batch(),
            self.dataset.truth_batch,
            score_threshold=self.serving_threshold,
        )

    def big_model_counts(self) -> CountSummary:
        """Detected-object count of the big model alone."""
        return count_summary(
            self.big_batch(),
            self.dataset.truth_batch,
            score_threshold=self.serving_threshold,
        )


@dataclass(frozen=True)
class SmallBigSystem:
    """Small model + discriminator at the edge, big model in the cloud."""

    small_model: SimulatedDetector
    big_model: SimulatedDetector
    discriminator: DifficultCaseDiscriminator

    def process_image(self, record) -> tuple[Detections, bool]:
        """Serve a single image (the Fig. 2 workflow).

        Returns ``(final detections, uploaded?)``.
        """
        preliminary = self.small_model.detect(record)
        difficult = self.discriminator.decide(preliminary)
        if difficult:
            return self.big_model.detect(record), True
        return preliminary, False

    def run(
        self,
        dataset: Dataset,
        *,
        small_detections: DetectionBatch | list[Detections] | None = None,
        big_detections: DetectionBatch | list[Detections] | None = None,
        uploaded: np.ndarray | None = None,
    ) -> SystemRun:
        """Serve a whole split.

        Parameters
        ----------
        small_detections / big_detections:
            Optional precomputed raw outputs (cache sharing).  When omitted
            the system's detectors run directly.
        uploaded:
            Optional externally supplied upload mask — used by the baseline
            policies (random / blur / confidence), which replace the
            discriminator's verdicts but keep the serving machinery.
        """
        if small_detections is None:
            small_detections = self.small_model.detect_split(dataset)
        if big_detections is None:
            big_detections = self.big_model.detect_split(dataset)
        if uploaded is None:
            uploaded = self.discriminator.decide_split(small_detections)
        uploaded = np.asarray(uploaded, dtype=bool)
        return SystemRun(
            dataset=dataset,
            uploaded=uploaded,
            small_detections=small_detections,
            big_detections=big_detections,
        )
