"""The difficult-case discriminator (Sec. V).

The discriminator is the system's core: a three-threshold model over two
semantic features of the small model's raw output.  :meth:`fit` reproduces
the paper's full calibration procedure; :meth:`decide` implements the
three-step runtime rule of Sec. V.C.2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cases import SERVING_THRESHOLD, label_cases
from repro.core.features import extract_feature_arrays, extract_features
from repro.core.thresholds import (
    ThresholdFit,
    decide_rule,
    fit_confidence_threshold,
    fit_decision_thresholds,
)
from repro.detection.batch import DetectionBatch, GroundTruthBatch
from repro.detection.types import Detections, GroundTruth
from repro.errors import CalibrationError, ConfigurationError
from repro.metrics.classify import BinaryMetrics, binary_metrics

__all__ = ["DiscriminatorFitReport", "DifficultCaseDiscriminator", "DiscriminatorPolicy"]


@dataclass(frozen=True)
class DiscriminatorFitReport:
    """Everything Table I needs about a fit.

    ``ground_truth_metrics`` evaluates the decision rule with *true*
    features on the training split (Table I row "Ground Truth");
    ``predicted_metrics`` evaluates the deployed rule — estimated features
    from the small model's output — on the same split (row "Predicted" uses
    the test split; the harness recomputes it there).
    """

    fit: ThresholdFit
    ground_truth_metrics: BinaryMetrics
    predicted_metrics: BinaryMetrics
    num_train_images: int
    difficult_fraction: float


@dataclass(frozen=True)
class DifficultCaseDiscriminator:
    """Three-threshold difficult-case discriminator.

    Attributes
    ----------
    confidence_threshold:
        Noise-filter threshold for estimating object count/min-area from the
        small model's raw boxes (paper: 0.15-0.35).
    count_threshold:
        "Too many objects" cut-off (paper: 2).
    area_threshold:
        "Too small an object" cut-off on the minimum area ratio
        (paper: 0.31).
    """

    confidence_threshold: float
    count_threshold: int
    area_threshold: float
    serving_threshold: float = SERVING_THRESHOLD

    def decide(self, detections: Detections) -> bool:
        """Classify one image from its small-model detections.

        Returns ``True`` when the image is a difficult case (upload it).
        The three-step rule is applied on scalars directly — single-image
        serving never allocates per-frame numpy arrays.
        """
        features = extract_features(
            detections,
            self.confidence_threshold,
            serving_threshold=self.serving_threshold,
        )
        # Scalar transcription of thresholds.decide_rule — keep the two in
        # lockstep (the equivalence tests assert decide == decide_split).
        if features.n_predict == features.n_estimated:
            return False
        return bool(features.n_estimated > self.count_threshold or features.min_area_estimated < self.area_threshold)

    def decide_split(self, detections: DetectionBatch | list[Detections]) -> np.ndarray:
        """Vectorised verdicts for a whole split (True = difficult)."""
        n_predict, n_estimated, min_area = extract_feature_arrays(
            detections,
            self.confidence_threshold,
            serving_threshold=self.serving_threshold,
        )
        return decide_rule(
            n_predict,
            n_estimated,
            min_area,
            self.count_threshold,
            self.area_threshold,
        )

    def evaluate(
        self,
        small_detections: DetectionBatch | list[Detections],
        big_detections: DetectionBatch | list[Detections],
    ) -> BinaryMetrics:
        """Classification quality against difficult-case labels."""
        labels = label_cases(small_detections, big_detections)
        predicted = self.decide_split(small_detections)
        return binary_metrics(predicted, labels)

    # ------------------------------------------------------------------ #
    # calibration
    # ------------------------------------------------------------------ #
    @classmethod
    def fit(
        cls,
        small_detections: DetectionBatch | list[Detections],
        big_detections: DetectionBatch | list[Detections],
        truths: GroundTruthBatch | list[GroundTruth],
        *,
        serving_threshold: float = SERVING_THRESHOLD,
    ) -> tuple["DifficultCaseDiscriminator", DiscriminatorFitReport]:
        """Calibrate all three thresholds on a training split (Sec. V.D).

        Parameters
        ----------
        small_detections / big_detections:
            Both models' raw outputs on the *training* split.
        truths:
            The training annotations (ground truths for Eq. 1 and for the
            true-feature grid search) — a :class:`GroundTruthBatch` (or a
            ``Dataset``, via its cached batch) or a plain list.
        """
        gt = GroundTruthBatch.coerce(truths)
        if not (len(small_detections) == len(big_detections) == len(gt)):
            raise CalibrationError("small detections, big detections and truths must align")
        if len(gt) == 0:
            raise CalibrationError("cannot fit a discriminator on an empty split")

        small_batch = DetectionBatch.coerce(small_detections)
        big_batch = DetectionBatch.coerce(big_detections)
        labels = label_cases(small_batch, big_batch, threshold=serving_threshold)
        confidence_threshold = fit_confidence_threshold(small_batch, gt)

        n_predict = small_batch.count_above(serving_threshold)
        true_counts = gt.counts()
        true_min_areas = gt.min_area_ratios()
        count_threshold, area_threshold, gt_metrics = fit_decision_thresholds(
            n_predict,
            true_counts,
            true_min_areas,
            labels,
        )

        discriminator = cls(
            confidence_threshold=confidence_threshold,
            count_threshold=count_threshold,
            area_threshold=area_threshold,
            serving_threshold=serving_threshold,
        )
        predicted_metrics = discriminator.evaluate(small_batch, big_batch)
        report = DiscriminatorFitReport(
            fit=ThresholdFit(
                confidence_threshold=confidence_threshold,
                count_threshold=count_threshold,
                area_threshold=area_threshold,
                train_metrics=gt_metrics,
            ),
            ground_truth_metrics=gt_metrics,
            predicted_metrics=predicted_metrics,
            num_train_images=len(gt),
            difficult_fraction=float(np.mean(labels)),
        )
        return discriminator, report


@dataclass(frozen=True)
class DiscriminatorPolicy:
    """The fitted discriminator as a serving-pipeline offload policy.

    Adapts :class:`DifficultCaseDiscriminator` to the
    :class:`~repro.runtime.serving.OffloadPolicy` protocol, so the paper's
    contribution plugs into the same pipeline slot as the Sec. VI.E upload
    baselines and the degenerate always/never decisions.
    """

    discriminator: DifficultCaseDiscriminator

    @property
    def name(self) -> str:
        """Policy identifier used in reports."""
        return "discriminator"

    def select(
        self,
        dataset,
        small_detections: DetectionBatch | list[Detections] | None,
    ) -> np.ndarray:
        """Upload mask: the discriminator's verdicts on the split."""
        if small_detections is None:
            raise ConfigurationError(
                "the discriminator policy needs the small model's detections "
                "(pass small_detections= to the serving engine)"
            )
        if len(small_detections) != len(dataset):
            raise ConfigurationError(f"{len(small_detections)} detection sets for {len(dataset)} images")
        return self.discriminator.decide_split(small_detections)
