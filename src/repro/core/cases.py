"""Difficult-case definition and labelling (Sec. V.A).

    "We define an image as a difficult case if the small model fails to
     detect all the objects in it and vice versa. [...] The detection result
     of the big model is compared with the result of the small model.  When
     the difference in the number of detected objects is greater than or
     equal to 1 [...] we will mark the image as a difficult case."

The serving confidence threshold is 0.5 throughout the paper: only boxes
scoring at least 0.5 count as detected objects.
"""

from __future__ import annotations

import numpy as np

from repro.detection.batch import DetectionBatch
from repro.detection.types import Detections
from repro.errors import ConfigurationError

__all__ = ["SERVING_THRESHOLD", "is_difficult_case", "label_cases"]

#: The paper's serving confidence threshold (Sec. V.A).
SERVING_THRESHOLD = 0.5


def is_difficult_case(
    small: Detections,
    big: Detections,
    *,
    threshold: float = SERVING_THRESHOLD,
    margin: int = 1,
) -> bool:
    """Label one image from the two models' served detection counts.

    The image is difficult when the big model detects at least ``margin``
    more objects than the small model did — evidence the small model missed
    something.
    """
    if small.image_id != big.image_id:
        raise ConfigurationError(f"detections belong to different images: " f"{small.image_id!r} vs {big.image_id!r}")
    if margin < 1:
        raise ConfigurationError("margin must be >= 1")
    return big.count_above(threshold) - small.count_above(threshold) >= margin


def label_cases(
    small_detections: DetectionBatch | list[Detections],
    big_detections: DetectionBatch | list[Detections],
    *,
    threshold: float = SERVING_THRESHOLD,
    margin: int = 1,
) -> np.ndarray:
    """Vectorised difficult-case labels for a whole split.

    Returns a boolean array aligned with the detection splits;
    ``True`` = difficult.  Both splits are compared as
    :class:`DetectionBatch` flat arrays — two threshold-count passes instead
    of a per-image Python loop.
    """
    if len(small_detections) != len(big_detections):
        raise ConfigurationError(f"got {len(small_detections)} small vs {len(big_detections)} big " f"detection sets")
    if margin < 1:
        raise ConfigurationError("margin must be >= 1")
    small = DetectionBatch.coerce(small_detections)
    big = DetectionBatch.coerce(big_detections)
    if small.image_ids != big.image_ids:
        mismatch = next((a, b) for a, b in zip(small.image_ids, big.image_ids) if a != b)
        raise ConfigurationError(f"detections belong to different images: " f"{mismatch[0]!r} vs {mismatch[1]!r}")
    return big.count_above(threshold) - small.count_above(threshold) >= margin
