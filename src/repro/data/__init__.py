"""Synthetic dataset substrate: scenes, splits, rendering, degradation."""

from repro.data.classes import COCO18_CLASSES, HELMET_CLASSES, VOC_CLASSES
from repro.data.datasets import (
    DATASET_SETTINGS,
    Dataset,
    DatasetSetting,
    ImageRecord,
    list_settings,
    load_dataset,
)
from repro.data.degrade import PRISTINE, Degradation, DegradationModel
from repro.data.io import (
    load_dataset_file,
    load_detections_file,
    save_dataset,
    save_detections,
)
from repro.data.render import brenner_gradient, render_image
from repro.data.scene import Scene, SceneProfile, sample_scene
from repro.data.stats import SplitStats, per_image_features, split_stats

__all__ = [
    "COCO18_CLASSES",
    "HELMET_CLASSES",
    "VOC_CLASSES",
    "DATASET_SETTINGS",
    "Dataset",
    "DatasetSetting",
    "ImageRecord",
    "list_settings",
    "load_dataset",
    "PRISTINE",
    "Degradation",
    "DegradationModel",
    "load_dataset_file",
    "load_detections_file",
    "save_dataset",
    "save_detections",
    "brenner_gradient",
    "render_image",
    "Scene",
    "SceneProfile",
    "sample_scene",
    "SplitStats",
    "per_image_features",
    "split_stats",
]
