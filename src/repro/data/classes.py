"""Class vocabularies of the paper's three datasets.

* PASCAL VOC: the standard 20 categories.
* COCO-18: the paper selects 98 267 COCO images containing 18 of the VOC
  categories ("the same 18 classes as in the VOC dataset").  COCO has no
  exact ``diningtable``/``pottedplant`` counterparts under VOC naming, so we
  take the VOC vocabulary minus those two — any fixed 18-subset preserves
  the experiment's structure.
* Helmet: the Sedna/KubeEdge safety-helmet dataset distinguishes workers
  wearing helmets from bare heads.
"""

from __future__ import annotations

__all__ = ["VOC_CLASSES", "COCO18_CLASSES", "HELMET_CLASSES"]

VOC_CLASSES: tuple[str, ...] = (
    "aeroplane",
    "bicycle",
    "bird",
    "boat",
    "bottle",
    "bus",
    "car",
    "cat",
    "chair",
    "cow",
    "diningtable",
    "dog",
    "horse",
    "motorbike",
    "person",
    "pottedplant",
    "sheep",
    "sofa",
    "train",
    "tvmonitor",
)

COCO18_CLASSES: tuple[str, ...] = tuple(name for name in VOC_CLASSES if name not in ("diningtable", "pottedplant"))

HELMET_CLASSES: tuple[str, ...] = ("helmet", "head")
