"""Dataset statistics: the inputs to Fig. 4 and to profile calibration."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.datasets import Dataset

__all__ = ["SplitStats", "split_stats", "per_image_features"]


@dataclass(frozen=True)
class SplitStats:
    """Aggregate statistics of one dataset split."""

    num_images: int
    total_objects: int
    mean_objects: float
    median_min_area: float
    p10_min_area: float
    crowded_fraction: float  # images with more than 2 objects
    tiny_fraction: float  # images whose smallest object is below 2 % area

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.num_images} images, {self.total_objects} objects "
            f"({self.mean_objects:.2f}/image), median min-area "
            f"{self.median_min_area:.3f}, crowded {100 * self.crowded_fraction:.1f}%, "
            f"tiny {100 * self.tiny_fraction:.1f}%"
        )


def per_image_features(dataset: Dataset) -> tuple[np.ndarray, np.ndarray]:
    """Per-image ``(object count, minimum area ratio)`` arrays.

    These are the two ground-truth semantics the discriminator is built on
    (Sec. V.B); Fig. 4 scatters exactly these values.
    """
    counts = np.array([len(record.truth) for record in dataset.records], dtype=np.int64)
    min_areas = np.array([record.truth.min_area_ratio for record in dataset.records], dtype=np.float64)
    return counts, min_areas


def split_stats(dataset: Dataset) -> SplitStats:
    """Compute :class:`SplitStats` for a materialised split."""
    counts, min_areas = per_image_features(dataset)
    if counts.size == 0:
        return SplitStats(0, 0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return SplitStats(
        num_images=int(counts.size),
        total_objects=int(counts.sum()),
        mean_objects=float(counts.mean()),
        median_min_area=float(np.median(min_areas)),
        p10_min_area=float(np.percentile(min_areas, 10)),
        crowded_fraction=float(np.mean(counts > 2)),
        tiny_fraction=float(np.mean(min_areas < 0.02)),
    )
