"""Image-quality degradation model.

The Helmet dataset "comes from a real scene, so there are various classes:
blur, occlusion, water stains, smoke, insufficient light" (Sec. VI.A).  We
model degradation as a per-image *quality* scalar in ``(0, 1]`` plus the
concrete effect used by the renderer (Gaussian blur sigma, brightness
scale).  Detector profiles translate quality into a recall penalty via their
``quality_sensitivity`` exponent, so robustness differences between the big
and small models are exercised end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["Degradation", "DegradationModel", "PRISTINE"]


@dataclass(frozen=True)
class Degradation:
    """Concrete degradation applied to one image."""

    quality: float = 1.0
    blur_sigma: float = 0.0
    brightness: float = 1.0
    kind: str = "none"

    def __post_init__(self) -> None:
        if not 0.0 < self.quality <= 1.0:
            raise ConfigurationError(f"quality must be in (0, 1], got {self.quality}")
        if self.blur_sigma < 0.0:
            raise ConfigurationError("blur_sigma must be >= 0")
        if not 0.0 < self.brightness <= 1.5:
            raise ConfigurationError("brightness out of range (0, 1.5]")


#: The identity degradation.
PRISTINE = Degradation()


@dataclass(frozen=True)
class DegradationModel:
    """Dataset-level degradation mix.

    ``degraded_fraction`` of images receive a random degradation whose
    quality is uniform in ``[min_quality, max_quality]``; the rest are
    pristine.  Blur sigma and brightness are derived from the drawn quality
    so that lower quality means blurrier and darker imagery — which is what
    both the Brenner-gradient baseline and the detector penalty consume.
    """

    degraded_fraction: float = 0.0
    min_quality: float = 0.45
    max_quality: float = 0.9
    max_blur_sigma: float = 3.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.degraded_fraction <= 1.0:
            raise ConfigurationError("degraded_fraction must be in [0, 1]")
        if not 0.0 < self.min_quality <= self.max_quality <= 1.0:
            raise ConfigurationError("quality bounds must satisfy 0 < min <= max <= 1")

    def sample(self, rng: np.random.Generator) -> Degradation:
        """Draw one image's degradation."""
        if rng.uniform() >= self.degraded_fraction:
            return PRISTINE
        quality = float(rng.uniform(self.min_quality, self.max_quality))
        severity = 1.0 - quality
        kind = str(rng.choice(["blur", "low-light", "smoke"]))
        blur_sigma = 0.0
        brightness = 1.0
        if kind == "blur":
            blur_sigma = self.max_blur_sigma * severity / (1.0 - self.min_quality)
        elif kind == "low-light":
            brightness = max(0.25, 1.0 - 0.9 * severity)
            blur_sigma = 0.3 * severity
        else:  # smoke / haze: mild blur and washed-out contrast
            blur_sigma = 1.5 * severity
            brightness = max(0.5, 1.0 - 0.4 * severity)
        return Degradation(quality=quality, blur_sigma=blur_sigma, brightness=brightness, kind=kind)
