"""Dataset containers and the registry of the paper's five settings.

The paper evaluates on four training *settings* over three datasets plus a
real-world one:

========  =========================================  ======================
setting   train split                                test split
========  =========================================  ======================
voc07     VOC2007 trainval (5 011)                   VOC2007 test (4 952)
voc07+12  VOC07 trainval + VOC12 trainval (16 551)   VOC2007 test (4 952)
voc07++12 VOC07 trainval+test + VOC12 part (16 551)  4 952 from VOC12
coco18    COCO 18-class subset (93 353)              4 914
helmet    Sedna helmet dataset (3 000)               1 000
========  =========================================  ======================

``voc07`` and ``voc07+12`` share their *test images exactly* (both use
VOC2007 test), which the registry reproduces by scoping the test generator
to the same stream; what differs between those settings is the detector
capability (models trained on more data — handled by the simulator presets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro._rng import DEFAULT_SEED, generator_for
from repro.data.classes import COCO18_CLASSES, HELMET_CLASSES, VOC_CLASSES
from repro.data.degrade import Degradation, DegradationModel
from repro.data.scene import SceneProfile, sample_scene
from repro.detection.batch import GroundTruthBatch
from repro.detection.types import GroundTruth
from repro.errors import DatasetError

__all__ = [
    "ImageRecord",
    "Dataset",
    "DatasetSetting",
    "DATASET_SETTINGS",
    "list_settings",
    "load_dataset",
]


@dataclass(frozen=True)
class ImageRecord:
    """One image: its annotation plus rendering/degradation metadata."""

    truth: GroundTruth
    degradation: Degradation
    render_seed: int

    @property
    def image_id(self) -> str:
        """The underlying image identifier."""
        return self.truth.image_id

    @property
    def quality(self) -> float:
        """Image quality in (0, 1]; 1 = pristine."""
        return self.degradation.quality


@dataclass(frozen=True)
class Dataset:
    """A materialised split: class vocabulary plus image records."""

    name: str
    split: str
    classes: tuple[str, ...]
    records: list[ImageRecord] = field(repr=False)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def num_classes(self) -> int:
        """Size of the class vocabulary."""
        return len(self.classes)

    @property
    def truths(self) -> list[GroundTruth]:
        """Ground-truth annotations in record order."""
        return [record.truth for record in self.records]

    @cached_property
    def image_ids(self) -> tuple[str, ...]:
        """Image identifiers in record order (computed once per split)."""
        return tuple(record.image_id for record in self.records)

    @cached_property
    def truth_batch(self) -> GroundTruthBatch:
        """The split's annotations as a cached structure-of-arrays batch.

        Evaluation code (VOC AP pooling, counting, threshold fits) consumes
        this directly, so a split's ground truth is flattened exactly once.
        """
        return GroundTruthBatch.from_truths(self.truths)

    @property
    def total_objects(self) -> int:
        """Total annotated objects across the split."""
        return sum(len(record.truth) for record in self.records)

    def record(self, image_id: str) -> ImageRecord:
        """Look up a record by image id."""
        for candidate in self.records:
            if candidate.image_id == image_id:
                return candidate
        raise DatasetError(f"unknown image id {image_id!r} in {self.name}/{self.split}")

    def subset(self, count: int) -> "Dataset":
        """The first ``count`` records as a new dataset (deterministic)."""
        if count < 0:
            raise DatasetError("subset count must be >= 0")
        return Dataset(
            name=self.name,
            split=self.split,
            classes=self.classes,
            records=self.records[:count],
        )

    def with_degradation(
        self,
        model: DegradationModel,
        *,
        seed: int = DEFAULT_SEED,
        scope: str = "drift",
    ) -> "Dataset":
        """The same annotated scenes under a different degradation mix.

        Re-samples every record's degradation (and render seed) from
        ``model`` while keeping the annotations untouched — a night
        camera's low-light imagery, a smoky site — so per-camera quality
        drift can ride the same split: record order, image ids and ground
        truth stay aligned with the original, which is what heterogeneous
        fleet runs and rolling-quality evaluation assume.  Deterministic in
        ``(seed, scope, record index)``.
        """
        records: list[ImageRecord] = []
        for index, record in enumerate(self.records):
            rng = generator_for(seed, "degradation-drift", scope, self.name, self.split, index)
            records.append(
                ImageRecord(
                    truth=record.truth,
                    degradation=model.sample(rng),
                    render_seed=int(rng.integers(0, 2**31 - 1)),
                )
            )
        return Dataset(name=self.name, split=self.split, classes=self.classes, records=records)


@dataclass(frozen=True)
class DatasetSetting:
    """Registry entry describing how to generate one setting's splits."""

    name: str
    classes: tuple[str, ...]
    scene_profile: SceneProfile
    degradation: DegradationModel
    train_size: int
    test_size: int
    #: Seed scopes let settings share image streams: voc07 and voc07+12 use
    #: the same test scope, hence literally identical test images.
    train_scope: str = ""
    test_scope: str = ""
    image_width: int = 500
    image_height: int = 375

    @property
    def num_classes(self) -> int:
        """Size of the class vocabulary."""
        return len(self.classes)

    def scope_for(self, split: str) -> str:
        if split == "train":
            return self.train_scope or f"{self.name}-train"
        return self.test_scope or f"{self.name}-test"

    def size_for(self, split: str) -> int:
        return self.train_size if split == "train" else self.test_size


_VOC_SCENES = SceneProfile(
    mean_extra_objects=1.45,
    count_dispersion=0.55,
    area_median=0.085,
    area_sigma=1.35,
)

_VOC12_SCENES = SceneProfile(
    mean_extra_objects=1.40,
    count_dispersion=0.55,
    area_median=0.082,
    area_sigma=1.35,
)

# The paper's COCO is an 18-VOC-class *subset* (98 267 images), not full
# COCO: scenes are denser than VOC but object sizes stay VOC-like, which is
# what keeps the min-area feature informative there.
_COCO_SCENES = SceneProfile(
    mean_extra_objects=2.30,
    count_dispersion=0.70,
    area_median=0.070,
    area_sigma=1.45,
)

_HELMET_SCENES = SceneProfile(
    mean_extra_objects=0.25,
    count_dispersion=0.50,
    area_median=0.055,
    area_sigma=0.9,
    class_zipf=0.5,
)

_MILD_DEGRADATION = DegradationModel(degraded_fraction=0.08, min_quality=0.7)
_HELMET_DEGRADATION = DegradationModel(degraded_fraction=0.4, min_quality=0.45, max_quality=0.9)

DATASET_SETTINGS: dict[str, DatasetSetting] = {
    "voc07": DatasetSetting(
        name="voc07",
        classes=VOC_CLASSES,
        scene_profile=_VOC_SCENES,
        degradation=_MILD_DEGRADATION,
        train_size=5011,
        test_size=4952,
        train_scope="voc07-trainval",
        test_scope="voc07-test",
    ),
    "voc07+12": DatasetSetting(
        name="voc07+12",
        classes=VOC_CLASSES,
        scene_profile=_VOC_SCENES,
        degradation=_MILD_DEGRADATION,
        train_size=16551,
        test_size=4952,
        train_scope="voc0712-trainval",
        test_scope="voc07-test",  # identical test images as the voc07 setting
    ),
    "voc07++12": DatasetSetting(
        name="voc07++12",
        classes=VOC_CLASSES,
        scene_profile=_VOC12_SCENES,
        degradation=_MILD_DEGRADATION,
        train_size=16551,
        test_size=4952,
        train_scope="voc07pp12-train",
        test_scope="voc12-test",
    ),
    "coco18": DatasetSetting(
        name="coco18",
        classes=COCO18_CLASSES,
        scene_profile=_COCO_SCENES,
        degradation=_MILD_DEGRADATION,
        train_size=93353,
        test_size=4914,
        image_width=640,
        image_height=480,
    ),
    "helmet": DatasetSetting(
        name="helmet",
        classes=HELMET_CLASSES,
        scene_profile=_HELMET_SCENES,
        degradation=_HELMET_DEGRADATION,
        train_size=3000,
        test_size=1000,
        image_width=1280,
        image_height=720,
    ),
}


def list_settings() -> list[str]:
    """Names of the registered dataset settings."""
    return sorted(DATASET_SETTINGS)


def load_dataset(
    setting: str,
    split: str = "test",
    *,
    seed: int = DEFAULT_SEED,
    fraction: float = 1.0,
) -> Dataset:
    """Materialise one split of a setting.

    Parameters
    ----------
    setting:
        One of :func:`list_settings`.
    split:
        ``"train"`` or ``"test"``.
    seed:
        Experiment-wide seed.  Image ``i`` of a given scope is a pure
        function of ``(seed, scope, i)``, so settings sharing a scope share
        images and ``fraction`` only truncates the stream.
    fraction:
        Fraction of the split to materialise (useful to keep unit tests and
        sweeps fast); the first ``ceil(fraction * size)`` images are used.
    """
    if split not in ("train", "test"):
        raise DatasetError(f"unknown split {split!r}; expected 'train' or 'test'")
    if not 0.0 < fraction <= 1.0:
        raise DatasetError(f"fraction must be in (0, 1], got {fraction}")
    try:
        entry = DATASET_SETTINGS[setting]
    except KeyError:
        raise DatasetError(f"unknown setting {setting!r}; available: {', '.join(list_settings())}") from None

    scope = entry.scope_for(split)
    size = int(np.ceil(entry.size_for(split) * fraction))
    records: list[ImageRecord] = []
    for index in range(size):
        rng = generator_for(seed, "scene", scope, index)
        scene = sample_scene(entry.scene_profile, entry.num_classes, rng)
        degradation = entry.degradation.sample(rng)
        image_id = f"{scope}-{index:06d}"
        truth = GroundTruth(
            image_id=image_id,
            boxes=scene.boxes,
            labels=scene.labels,
            width=entry.image_width,
            height=entry.image_height,
        )
        records.append(
            ImageRecord(
                truth=truth,
                degradation=degradation,
                render_seed=int(rng.integers(0, 2**31 - 1)),
            )
        )
    return Dataset(name=setting, split=split, classes=entry.classes, records=records)
