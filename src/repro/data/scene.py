"""Synthetic scene sampling.

A *scene* is the annotation content of one image: how many objects it has,
their classes, their area ratios and their placement.  The joint distribution
of (object count, minimum object area ratio) is the statistic every paper
experiment keys on — Fig. 4's easy/difficult separation, the discriminator
thresholds (2 objects / 0.31 area ratio) and the ~50 % difficult-case
prevalence all derive from it — so the generator controls it explicitly.

Count model:   ``K = 1 + NegativeBinomial(dispersion, p)`` (zero-truncated,
capped), giving VOC-like single-object dominance with a long crowded tail.
Area model:    log-normal area ratios, clipped; aspect ratios log-normal
around 1.  Class model: Zipf-tilted categorical over the vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["SceneProfile", "Scene", "sample_scene"]


@dataclass(frozen=True)
class SceneProfile:
    """Distribution parameters for one dataset's scenes.

    Attributes
    ----------
    mean_extra_objects:
        Mean of the zero-truncated part: mean object count is 1 + this.
    count_dispersion:
        Negative-binomial ``n``; smaller values give heavier crowded tails.
    max_objects:
        Hard cap on per-image object count.
    area_median:
        Median object area ratio (log-normal location).
    area_sigma:
        Log-normal shape; larger = wider spread toward tiny/huge objects.
    area_min, area_max:
        Clip bounds for a single object's area ratio.
    class_zipf:
        Zipf exponent tilting class frequencies (0 = uniform).
    aspect_sigma:
        Log-normal sigma of the box aspect ratio around 1.
    """

    mean_extra_objects: float
    count_dispersion: float
    max_objects: int = 40
    area_median: float = 0.09
    area_sigma: float = 1.3
    area_min: float = 3e-4
    area_max: float = 0.9
    class_zipf: float = 0.8
    aspect_sigma: float = 0.45

    def __post_init__(self) -> None:
        if self.mean_extra_objects < 0:
            raise ConfigurationError("mean_extra_objects must be >= 0")
        if self.count_dispersion <= 0:
            raise ConfigurationError("count_dispersion must be > 0")
        if not 0 < self.area_min < self.area_max <= 1.0:
            raise ConfigurationError(
                f"area bounds must satisfy 0 < min < max <= 1, got "
                f"({self.area_min}, {self.area_max})"
            )
        if not self.area_min <= self.area_median <= self.area_max:
            raise ConfigurationError("area_median outside clip bounds")
        if self.max_objects < 1:
            raise ConfigurationError("max_objects must be >= 1")

    @property
    def count_p(self) -> float:
        """Negative-binomial success probability implied by the mean."""
        if self.mean_extra_objects == 0:
            return 1.0
        return self.count_dispersion / (self.count_dispersion + self.mean_extra_objects)


@dataclass(frozen=True)
class Scene:
    """One sampled scene: normalised boxes, labels, derived statistics."""

    boxes: np.ndarray
    labels: np.ndarray
    areas: np.ndarray = field(repr=False)

    @property
    def num_objects(self) -> int:
        """Number of objects in the scene."""
        return int(self.labels.shape[0])

    @property
    def min_area_ratio(self) -> float:
        """Smallest object area ratio (1.0 for an empty scene)."""
        return float(self.areas.min()) if self.areas.size else 1.0


def _sample_count(profile: SceneProfile, rng: np.random.Generator) -> int:
    if profile.mean_extra_objects == 0:
        return 1
    extra = int(rng.negative_binomial(profile.count_dispersion, profile.count_p))
    return min(1 + extra, profile.max_objects)


def _sample_areas(profile: SceneProfile, count: int, rng: np.random.Generator) -> np.ndarray:
    mu = np.log(profile.area_median)
    areas = np.exp(rng.normal(mu, profile.area_sigma, size=count))
    return np.clip(areas, profile.area_min, profile.area_max)


def _class_weights(num_classes: int, zipf: float) -> np.ndarray:
    ranks = np.arange(1, num_classes + 1, dtype=np.float64)
    weights = ranks ** (-zipf)
    return weights / weights.sum()


def _place_boxes(areas: np.ndarray, aspect_sigma: float, rng: np.random.Generator) -> np.ndarray:
    """Place boxes of given areas uniformly so that each fits the image.

    Aspect ratio is log-normal around 1; width/height are capped at 1 (the
    area is preserved where possible, then the box is clipped).
    """
    count = areas.shape[0]
    aspect = np.exp(rng.normal(0.0, aspect_sigma, size=count))
    widths = np.sqrt(areas * aspect)
    heights = np.sqrt(areas / aspect)
    # If a side overflows the unit square, transfer extent to the other side
    # to preserve area, then clip.
    overflow_w = widths > 1.0
    heights[overflow_w] = np.minimum(areas[overflow_w], 1.0)
    widths[overflow_w] = 1.0
    overflow_h = heights > 1.0
    widths[overflow_h] = np.minimum(areas[overflow_h], 1.0)
    heights[overflow_h] = 1.0
    cx = rng.uniform(widths / 2.0, 1.0 - widths / 2.0)
    cy = rng.uniform(heights / 2.0, 1.0 - heights / 2.0)
    return np.stack(
        [cx - widths / 2.0, cy - heights / 2.0, cx + widths / 2.0, cy + heights / 2.0],
        axis=1,
    )


def sample_scene(profile: SceneProfile, num_classes: int, rng: np.random.Generator) -> Scene:
    """Draw one scene from ``profile``.

    The returned boxes are normalised xyxy within the unit square; labels are
    class indices drawn from the Zipf-tilted categorical distribution.
    """
    if num_classes < 1:
        raise ConfigurationError("num_classes must be >= 1")
    count = _sample_count(profile, rng)
    areas = _sample_areas(profile, count, rng)
    weights = _class_weights(num_classes, profile.class_zipf)
    labels = rng.choice(num_classes, size=count, p=weights).astype(np.int64)
    boxes = _place_boxes(areas, profile.aspect_sigma, rng)
    # Areas after placement can differ slightly from the sampled ones when a
    # box overflowed; recompute so Scene statistics match the boxes.
    final_areas = (boxes[:, 2] - boxes[:, 0]) * (boxes[:, 3] - boxes[:, 1])
    return Scene(boxes=boxes, labels=labels, areas=final_areas)
