"""Numpy image renderer.

The Brenner-gradient baseline (Sec. VI.E.2, Eq. 2) ranks *pixels*, so the
library needs actual images.  The renderer draws each scene as a grayscale
array: a smooth textured background plus one filled shape per object with a
contrasting border.  Degradations (blur, low light) are applied with
``scipy.ndimage``, which is exactly what makes degraded images score low
Brenner values — the baseline's selection signal works for real.

Rendering resolution is modest (default 128x128) because the Brenner
gradient is resolution-covariant: ranking is preserved.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro._rng import generator_for
from repro.data.datasets import ImageRecord
from repro.detection.boxes import scale_boxes
from repro.errors import ConfigurationError

__all__ = ["render_image", "brenner_gradient"]


def _background(size: int, rng: np.random.Generator) -> np.ndarray:
    """Smooth low-frequency background texture in [0.2, 0.8]."""
    coarse = rng.uniform(0.0, 1.0, size=(8, 8))
    zoomed = ndimage.zoom(coarse, size / 8.0, order=3)[:size, :size]
    noise = rng.normal(0.0, 0.02, size=(size, size))
    spread = max(float(np.ptp(zoomed)), 1e-9)
    return np.clip(0.2 + 0.6 * (zoomed - zoomed.min()) / spread + noise, 0.0, 1.0)


def _draw_object(
    canvas: np.ndarray,
    box_px: np.ndarray,
    fill: float,
    rng: np.random.Generator,
) -> None:
    """Fill one object box with a contrasting shade and a crisp border."""
    size = canvas.shape[0]
    x0, y0, x1, y1 = box_px
    col0, col1 = int(np.floor(x0)), int(np.ceil(x1))
    row0, row1 = int(np.floor(y0)), int(np.ceil(y1))
    col0, row0 = max(col0, 0), max(row0, 0)
    col1, row1 = min(col1, size), min(row1, size)
    if col1 <= col0 or row1 <= row0:
        return
    patch = canvas[row0:row1, col0:col1]
    if rng.uniform() < 0.5:  # ellipse
        height, width = patch.shape
        yy, xx = np.ogrid[:height, :width]
        cy, cx = (height - 1) / 2.0, (width - 1) / 2.0
        mask = ((yy - cy) / max(cy, 0.5)) ** 2 + ((xx - cx) / max(cx, 0.5)) ** 2 <= 1.0
    else:  # rectangle
        mask = np.ones(patch.shape, dtype=bool)
    patch[mask] = fill
    # Crisp 1-px border maximises the Brenner response of sharp imagery.
    border = np.zeros(patch.shape, dtype=bool)
    border[0, :] = border[-1, :] = True
    border[:, 0] = border[:, -1] = True
    patch[border & mask] = 1.0 - fill


def render_image(record: ImageRecord, *, size: int = 128) -> np.ndarray:
    """Render one image record to a ``(size, size)`` float array in [0, 1].

    The render is deterministic in the record's ``render_seed``; the
    degradation stored on the record (blur, brightness) is applied last.
    """
    if size < 16:
        raise ConfigurationError(f"render size too small: {size}")
    rng = generator_for(record.render_seed, "render", record.image_id)
    canvas = _background(size, rng)
    boxes_px = scale_boxes(record.truth.boxes, size, size)
    # Draw large objects first so small ones stay visible on top.
    order = np.argsort(-record.truth.area_ratios)
    for obj_index in order:
        fill = float(rng.uniform(0.0, 1.0))
        # Push fill away from mid-gray so objects contrast with background.
        fill = 0.08 if fill < 0.5 else 0.92
        _draw_object(canvas, boxes_px[obj_index], fill, rng)
    degradation = record.degradation
    if degradation.blur_sigma > 0.0:
        canvas = ndimage.gaussian_filter(canvas, degradation.blur_sigma * size / 128.0)
    if degradation.brightness != 1.0:
        canvas = canvas * degradation.brightness
    return np.clip(canvas, 0.0, 1.0)


def brenner_gradient(image: np.ndarray) -> float:
    """Brenner gradient sharpness measure (the paper's Eq. 2).

    ``sum over x, y of |f(x + 2, y) - f(x, y)|^2`` — larger values mean a
    sharper (clearer) image.  Computed on the gray values scaled to [0, 255]
    to match the conventional definition.
    """
    array = np.asarray(image, dtype=np.float64)
    if array.ndim != 2:
        raise ConfigurationError(f"expected a 2-D grayscale image, got {array.ndim}-D")
    gray = array * 255.0
    diff = gray[2:, :] - gray[:-2, :]
    return float(np.sum(diff * diff))
