"""Dataset and detection serialization (JSON).

Lets users export synthetic splits and detector outputs for inspection or
for use outside this library (e.g. plotting, or feeding a real training
pipeline), and re-import them bit-exactly.  The format is intentionally
plain: one JSON document, numbers as lists, schema version pinned.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.data.datasets import Dataset, ImageRecord
from repro.data.degrade import Degradation
from repro.detection.types import Detections, GroundTruth
from repro.errors import DatasetError

__all__ = [
    "dataset_to_dict",
    "dataset_from_dict",
    "save_dataset",
    "load_dataset_file",
    "detections_to_dict",
    "detections_from_dict",
    "save_detections",
    "load_detections_file",
]

_SCHEMA_VERSION = 1


def dataset_to_dict(dataset: Dataset) -> dict:
    """Serialise a dataset split to a JSON-compatible dict."""
    return {
        "schema": _SCHEMA_VERSION,
        "kind": "dataset",
        "name": dataset.name,
        "split": dataset.split,
        "classes": list(dataset.classes),
        "records": [
            {
                "image_id": record.image_id,
                "boxes": record.truth.boxes.tolist(),
                "labels": record.truth.labels.tolist(),
                "width": record.truth.width,
                "height": record.truth.height,
                "quality": record.degradation.quality,
                "blur_sigma": record.degradation.blur_sigma,
                "brightness": record.degradation.brightness,
                "degradation_kind": record.degradation.kind,
                "render_seed": record.render_seed,
            }
            for record in dataset.records
        ],
    }


def dataset_from_dict(payload: dict) -> Dataset:
    """Rebuild a dataset from :func:`dataset_to_dict` output."""
    _check_payload(payload, "dataset")
    records = []
    for entry in payload["records"]:
        truth = GroundTruth(
            image_id=entry["image_id"],
            boxes=np.asarray(entry["boxes"], dtype=np.float64).reshape(-1, 4),
            labels=np.asarray(entry["labels"], dtype=np.int64),
            width=int(entry["width"]),
            height=int(entry["height"]),
        )
        degradation = Degradation(
            quality=float(entry["quality"]),
            blur_sigma=float(entry["blur_sigma"]),
            brightness=float(entry["brightness"]),
            kind=str(entry["degradation_kind"]),
        )
        records.append(
            ImageRecord(
                truth=truth,
                degradation=degradation,
                render_seed=int(entry["render_seed"]),
            )
        )
    return Dataset(
        name=payload["name"],
        split=payload["split"],
        classes=tuple(payload["classes"]),
        records=records,
    )


def detections_to_dict(detections: list[Detections], detector: str = "") -> dict:
    """Serialise per-image detections to a JSON-compatible dict."""
    return {
        "schema": _SCHEMA_VERSION,
        "kind": "detections",
        "detector": detector or (detections[0].detector if detections else "unknown"),
        "images": [
            {
                "image_id": dets.image_id,
                "boxes": dets.boxes.tolist(),
                "scores": dets.scores.tolist(),
                "labels": dets.labels.tolist(),
            }
            for dets in detections
        ],
    }


def detections_from_dict(payload: dict) -> list[Detections]:
    """Rebuild detections from :func:`detections_to_dict` output."""
    _check_payload(payload, "detections")
    detector = payload.get("detector", "unknown")
    out = []
    for entry in payload["images"]:
        out.append(
            Detections(
                image_id=entry["image_id"],
                boxes=np.asarray(entry["boxes"], dtype=np.float64).reshape(-1, 4),
                scores=np.asarray(entry["scores"], dtype=np.float64),
                labels=np.asarray(entry["labels"], dtype=np.int64),
                detector=detector,
            )
        )
    return out


def save_dataset(dataset: Dataset, path: str | Path) -> Path:
    """Write a dataset split to a JSON file; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(dataset_to_dict(dataset)))
    return path


def load_dataset_file(path: str | Path) -> Dataset:
    """Read a dataset split from :func:`save_dataset` output."""
    return dataset_from_dict(_read_json(path))


def save_detections(detections: list[Detections], path: str | Path, detector: str = "") -> Path:
    """Write per-image detections to a JSON file; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(detections_to_dict(detections, detector)))
    return path


def load_detections_file(path: str | Path) -> list[Detections]:
    """Read detections from :func:`save_detections` output."""
    return detections_from_dict(_read_json(path))


def _read_json(path: str | Path) -> dict:
    path = Path(path)
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise DatasetError(f"cannot read {path}: {error}") from error


def _check_payload(payload: dict, kind: str) -> None:
    if not isinstance(payload, dict):
        raise DatasetError(f"expected a JSON object, got {type(payload).__name__}")
    if payload.get("kind") != kind:
        raise DatasetError(f"expected a {kind!r} document, got {payload.get('kind')!r}")
    if payload.get("schema") != _SCHEMA_VERSION:
        raise DatasetError(
            f"unsupported schema version {payload.get('schema')!r} "
            f"(this library reads version {_SCHEMA_VERSION})"
        )
