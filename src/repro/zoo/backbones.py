"""Backbone (base-network) architecture specifications.

Each builder symbolically executes a backbone on a :class:`~repro.zoo.layers.Tape`
and returns the tape plus the *taps*: named feature maps that detection heads
attach to.  Widths follow the original publications; where the paper leaves a
width unspecified (the small models' trunks), the chosen multiplier is the one
that lands closest to the paper's Table II size budget — see DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.zoo.layers import Tape, TensorShape

__all__ = [
    "BackboneResult",
    "vgg16_ssd_trunk",
    "vgg_lite_trunk",
    "mobilenet_v1_trunk",
    "mobilenet_v2_trunk",
    "cspdarknet53_trunk",
]


@dataclass
class BackboneResult:
    """A symbolically executed backbone.

    Attributes
    ----------
    tape:
        The tape holding every recorded layer.
    taps:
        Feature maps (name -> shape) that heads or necks may consume, in
        backbone order.
    """

    tape: Tape
    taps: dict[str, TensorShape]


def _scaled(channels: int, multiplier: float) -> int:
    """Width-multiplied channel count, rounded to a multiple of 8 (>= 8)."""
    return max(8, int(round(channels * multiplier / 8)) * 8)


def vgg16_ssd_trunk(input_size: int = 300) -> BackboneResult:
    """VGG16 through conv5_3 plus SSD's converted fc6/fc7 (conv6/conv7).

    This is the standard SSD300 base network: 13 VGG convolutions, pool5
    turned into a stride-1 3x3 pool, conv6 a dilated 3x3x1024 and conv7 a
    1x1x1024.  Taps: ``conv4_3`` (38x38, with L2Norm) and ``conv7`` (19x19).
    """
    tape = Tape(TensorShape(3, input_size, input_size))
    taps: dict[str, TensorShape] = {}

    cfg = [
        ("conv1_1", 64),
        ("conv1_2", 64),
        ("pool1", None),
        ("conv2_1", 128),
        ("conv2_2", 128),
        ("pool2", None),
        ("conv3_1", 256),
        ("conv3_2", 256),
        ("conv3_3", 256),
        ("pool3", None),
        ("conv4_1", 512),
        ("conv4_2", 512),
        ("conv4_3", 512),
    ]
    for name, channels in cfg:
        if channels is None:
            # SSD's pool3 uses ceil mode so the 75x75 map becomes 38x38.
            tape.max_pool(name, ceil_mode=(name == "pool3"))
        else:
            tape.conv(name, channels)
    tape.l2_norm("conv4_3/l2norm")
    taps["conv4_3"] = tape.shape

    # pool3 uses ceil mode in SSD so 75 -> 38; pool4 brings 38 -> 19.
    tape.max_pool("pool4")
    for name in ("conv5_1", "conv5_2", "conv5_3"):
        tape.conv(name, 512)
    tape.max_pool("pool5", kernel=3, stride=1, padding=1)
    tape.conv("conv6", 1024, kernel=3)  # dilation changes receptive field only
    tape.conv("conv7", 1024, kernel=1)
    taps["conv7"] = tape.shape
    return BackboneResult(tape=tape, taps=taps)


def vgg_lite_trunk(
    input_size: int = 300,
    *,
    width_multiplier: float = 0.625,
    conv7_channels: int = 1024,
) -> BackboneResult:
    """The paper's VGG-Lite base network (Fig. 3) plus Conv6&7.

    VGG-Lite keeps one convolution per resolution stage — VGG16 minus nine
    convolutions and two pooling layers (the stride-1 pool5 and one stage
    pool are gone) — then Conv6 (3x3) and Conv7 (1x1x1024) adjust the scale
    for the extra feature layers.  The figure's printed widths are partially
    illegible; the default ``width_multiplier`` is chosen so that the full
    small model 1 reproduces Table II's 18.50 MB / ~5.6 GFLOPs budget.

    Tap: ``conv7`` (19x19x1024) — the small model has no 38x38 tap, which is
    precisely the design sacrifice Sec. IV.B discusses.
    """
    if not 0.0 < width_multiplier <= 2.0:
        raise ConfigurationError(f"width_multiplier out of range: {width_multiplier}")
    mult = width_multiplier
    tape = Tape(TensorShape(3, input_size, input_size))
    tape.conv("conv1", _scaled(64, mult))
    tape.max_pool("pool1")
    tape.conv("conv2", _scaled(128, mult))
    tape.max_pool("pool2")
    tape.conv("conv3", _scaled(256, mult))
    tape.max_pool("pool3", ceil_mode=True)
    tape.conv("conv4", _scaled(512, mult))
    tape.max_pool("pool4")
    tape.conv("conv6", _scaled(512, mult), kernel=3)
    tape.conv("conv7", conv7_channels, kernel=1)
    return BackboneResult(tape=tape, taps={"conv7": tape.shape})


_MOBILENET_V1_BLOCKS: tuple[tuple[int, int], ...] = (
    # (output channels, stride)
    (64, 1),
    (128, 2),
    (128, 1),
    (256, 2),
    (256, 1),
    (512, 2),
    (512, 1),
    (512, 1),
    (512, 1),
    (512, 1),
    (512, 1),
    (1024, 2),
    (1024, 1),
)


def mobilenet_v1_trunk(
    input_size: int = 300,
    *,
    width_multiplier: float = 1.0,
    truncate_at_stride: int | None = 16,
) -> BackboneResult:
    """MobileNetV1 feature extractor (Howard et al., 2017).

    ``truncate_at_stride=16`` stops after the last stride-16 block (the
    19x19 map for a 300 input) — the small-model recipe replaces everything
    past that point with the SSD extra feature layers, and the 38x38 map is
    never tapped (the paper's "remove the large-size feature map").
    Set ``truncate_at_stride=None`` to keep the full 13-block network.

    Tap: ``final`` — the last emitted feature map.
    """
    tape = Tape(TensorShape(3, input_size, input_size))
    tape.conv("conv1", _scaled(32, width_multiplier), stride=2, bias=False, batch_norm=True)
    stride_product = 2
    for index, (channels, stride) in enumerate(_MOBILENET_V1_BLOCKS, start=1):
        if truncate_at_stride is not None and stride == 2 and stride_product * 2 > truncate_at_stride:
            break
        stride_product *= stride if stride == 2 else 1
        tape.depthwise_separable(f"block{index}", _scaled(channels, width_multiplier), stride=stride)
    return BackboneResult(tape=tape, taps={"final": tape.shape})


_MOBILENET_V2_BLOCKS: tuple[tuple[int, int, int, int], ...] = (
    # (expansion, output channels, repeats, first stride)
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
)


def mobilenet_v2_trunk(
    input_size: int = 300,
    *,
    width_multiplier: float = 0.75,
    truncate_at_stride: int | None = 16,
) -> BackboneResult:
    """MobileNetV2 feature extractor (Sandler et al., 2018).

    With ``truncate_at_stride=16`` the network stops after the 96-channel
    stage (stride 16 — the 19x19 map at a 300 input), mirroring the small
    model recipe.  The default 0.75 width multiplier lands small model 3 on
    Table II's 6.5 MB budget.

    Tap: ``final``.
    """
    tape = Tape(TensorShape(3, input_size, input_size))
    tape.conv("conv1", _scaled(32, width_multiplier), stride=2, bias=False, batch_norm=True)
    stride_product = 2
    block_index = 0
    for expansion, channels, repeats, first_stride in _MOBILENET_V2_BLOCKS:
        if truncate_at_stride is not None and first_stride == 2 and stride_product * 2 > truncate_at_stride:
            break
        for repeat in range(repeats):
            stride = first_stride if repeat == 0 else 1
            stride_product *= 2 if stride == 2 else 1
            block_index += 1
            tape.inverted_residual(
                f"block{block_index}",
                _scaled(channels, width_multiplier),
                expansion=expansion,
                stride=stride,
            )
    return BackboneResult(tape=tape, taps={"final": tape.shape})


_CSPDARKNET53_STAGES: tuple[tuple[int, int], ...] = (
    # (output channels, residual blocks)
    (64, 1),
    (128, 2),
    (256, 8),
    (512, 8),
    (1024, 4),
)


def cspdarknet53_trunk(input_size: int = 608) -> BackboneResult:
    """CSPDarknet53 — YOLOv4's backbone (Wang et al., 2019).

    Each stage downsamples with a 3x3 stride-2 convolution and then runs a
    cross-stage-partial block: the input is split into two 1x1-projected
    halves, one half passes through ``n`` residual bottlenecks, and the
    halves are fused by a final 1x1 transition.

    Taps: ``stage3`` (stride 8), ``stage4`` (stride 16), ``stage5``
    (stride 32) — the three maps the PAN neck consumes.
    """
    tape = Tape(TensorShape(3, input_size, input_size))
    taps: dict[str, TensorShape] = {}
    tape.conv("stem", 32, bias=False, batch_norm=True)
    for stage_index, (channels, blocks) in enumerate(_CSPDARKNET53_STAGES, start=1):
        prefix = f"stage{stage_index}"
        tape.conv(f"{prefix}/down", channels, stride=2, bias=False, batch_norm=True)
        half = channels if stage_index == 1 else channels // 2
        # CSP split: two parallel 1x1 projections of the stage input.
        stage_input = tape.shape
        tape.pointwise(f"{prefix}/split_main", half)
        for block in range(blocks):
            bottleneck = half if stage_index == 1 else half
            tape.pointwise(f"{prefix}/res{block}/reduce", bottleneck)
            tape.conv(f"{prefix}/res{block}/expand", half, bias=False, batch_norm=True)
        main_shape = tape.shape
        tape.goto(stage_input)
        tape.pointwise(f"{prefix}/split_shortcut", half)
        # Fuse: concat (free) then 1x1 transition back to stage width.
        tape.goto(TensorShape(half * 2, main_shape.height, main_shape.width))
        tape.pointwise(f"{prefix}/transition", channels)
        if stage_index >= 3:
            taps[prefix] = tape.shape
    return BackboneResult(tape=tape, taps=taps)
