"""YOLOv4 detector assemblies: the second big model and its small companion.

YOLOv4 (Bochkovskiy et al., 2020) is CSPDarknet53 + SPP + PANet neck + three
anchor-based heads at strides 8/16/32.  The paper's Sec. VI.C small model
keeps the recipe of Sec. IV.B: MobileNetV1 base network with the large-scale
(stride-8, 76x76) feature map removed, so it predicts only at strides 16/32.
"""

from __future__ import annotations

from repro.detection.anchors import FeatureMapSpec, num_anchors, yolo_feature_maps
from repro.zoo.backbones import cspdarknet53_trunk, mobilenet_v1_trunk
from repro.zoo.layers import Tape, TensorShape
from repro.zoo.ssd import DetectorSpec

__all__ = [
    "yolo_small_feature_maps",
    "build_yolov4",
    "build_small_yolo_mobilenet_v1",
]

#: Anchors per spatial location in every YOLO head.
_ANCHORS_PER_LOCATION = 3


def yolo_small_feature_maps(input_size: int = 608) -> tuple[FeatureMapSpec, ...]:
    """The small YOLO model's anchor grids: YOLOv4 without the stride-8 map.

    Dropping the 76x76 map removes 17 328 of YOLOv4's 22 743 anchors (76 %),
    the YOLO analogue of the SSD small model losing its 38x38 default boxes.
    """
    return yolo_feature_maps(input_size)[1:]


def _conv_block(tape: Tape, name: str, channels: int, *, kernel: int = 1) -> TensorShape:
    """Conv + BN + activation — YOLOv4's basic unit."""
    return tape.conv(name, channels, kernel=kernel, bias=False, batch_norm=True)


def _five_convs(tape: Tape, prefix: str, narrow: int, wide: int) -> TensorShape:
    """The neck's standard 1x1/3x3 alternating five-convolution block."""
    _conv_block(tape, f"{prefix}/c1", narrow)
    _conv_block(tape, f"{prefix}/c2", wide, kernel=3)
    _conv_block(tape, f"{prefix}/c3", narrow)
    _conv_block(tape, f"{prefix}/c4", wide, kernel=3)
    return _conv_block(tape, f"{prefix}/c5", narrow)


def _yolo_head(tape: Tape, name: str, shape: TensorShape, wide: int, num_classes: int) -> None:
    """Detection head: 3x3 expansion then 1x1 to ``3 * (5 + C)`` channels."""
    tape.goto(shape)
    _conv_block(tape, f"{name}/expand", wide, kernel=3)
    tape.conv(f"{name}/pred", _ANCHORS_PER_LOCATION * (5 + num_classes), kernel=1)


def build_yolov4(num_classes: int = 20, input_size: int = 608) -> DetectorSpec:
    """The second big model: full YOLOv4 at a 608x608 input.

    CSPDarknet53 backbone, SPP on the stride-32 map, PAN top-down then
    bottom-up fusion, heads at 76/38/19.  Evaluates to ~64 M parameters —
    the published YOLOv4 weight count.
    """
    backbone = cspdarknet53_trunk(input_size)
    tape = backbone.tape
    p3_in, p4_in, p5_in = (backbone.taps[f"stage{i}"] for i in (3, 4, 5))

    # SPP block on stage5.
    tape.goto(p5_in)
    _conv_block(tape, "spp/pre1", 512)
    _conv_block(tape, "spp/pre2", 1024, kernel=3)
    _conv_block(tape, "spp/pre3", 512)
    spp_shape = tape.shape
    # Three parallel max-pools (5/9/13) concatenated with the identity.
    for pool_kernel in (5, 9, 13):
        tape.goto(spp_shape)
        tape.max_pool(f"spp/pool{pool_kernel}", kernel=pool_kernel, stride=1, padding=pool_kernel // 2)
    tape.goto(TensorShape(512 * 4, spp_shape.height, spp_shape.width))
    _conv_block(tape, "spp/post1", 512)
    _conv_block(tape, "spp/post2", 1024, kernel=3)
    p5 = _conv_block(tape, "spp/post3", 512)

    # Top-down path: P5 -> P4.
    _conv_block(tape, "pan/p5_to_p4", 256)  # then upsampled (free) to 38x38
    tape.goto(p4_in)
    _conv_block(tape, "pan/p4_proj", 256)
    tape.goto(TensorShape(512, p4_in.height, p4_in.width))
    p4 = _five_convs(tape, "pan/p4_fuse", 256, 512)

    # Top-down path: P4 -> P3.
    _conv_block(tape, "pan/p4_to_p3", 128)
    tape.goto(p3_in)
    _conv_block(tape, "pan/p3_proj", 128)
    tape.goto(TensorShape(256, p3_in.height, p3_in.width))
    p3 = _five_convs(tape, "pan/p3_fuse", 128, 256)

    # Bottom-up path: P3 -> N4 -> N5.
    _conv_block(tape, "pan/p3_down", 256, kernel=3)
    tape.goto(TensorShape(512, p4.height, p4.width))
    n4 = _five_convs(tape, "pan/n4_fuse", 256, 512)
    tape.goto(n4)
    _conv_block(tape, "pan/n4_down", 512, kernel=3)
    tape.goto(TensorShape(1024, p5.height, p5.width))
    n5 = _five_convs(tape, "pan/n5_fuse", 512, 1024)

    _yolo_head(tape, "head_p3", p3, 256, num_classes)
    _yolo_head(tape, "head_n4", n4, 512, num_classes)
    _yolo_head(tape, "head_n5", n5, 1024, num_classes)

    maps = yolo_feature_maps(input_size)
    return DetectorSpec(
        name="yolov4-cspdarknet53",
        algorithm="yolov4",
        params=tape.total_params,
        macs=tape.total_macs,
        num_anchors=num_anchors(maps),
        feature_maps=maps,
        num_classes=num_classes,
    )


def build_small_yolo_mobilenet_v1(num_classes: int = 20, input_size: int = 608) -> DetectorSpec:
    """The YOLO small model: MobileNetV1 base, stride-8 map removed.

    MobileNetV1 runs to stride 32; a thin two-level FPN fuses the stride-16
    and stride-32 maps; heads predict at 38x38 and 19x19 only, keeping 24 %
    of YOLOv4's anchor budget.
    """
    backbone = mobilenet_v1_trunk(input_size, width_multiplier=1.0, truncate_at_stride=None)
    tape = backbone.tape
    p5_in = backbone.taps["final"]  # stride 32: 19x19x1024

    # Stride-16 tap: MobileNetV1's block 11 output (512 channels, 38x38).
    p4_in = TensorShape(512, p5_in.height * 2, p5_in.width * 2)

    tape.goto(p5_in)
    p5 = _conv_block(tape, "fpn/p5_proj", 256)
    _conv_block(tape, "fpn/p5_to_p4", 128)
    tape.goto(p4_in)
    _conv_block(tape, "fpn/p4_proj", 128)
    tape.goto(TensorShape(256, p4_in.height, p4_in.width))
    p4 = _five_convs(tape, "fpn/p4_fuse", 128, 256)

    _yolo_head(tape, "head_p4", p4, 256, num_classes)
    _yolo_head(tape, "head_p5", p5, 512, num_classes)

    maps = yolo_small_feature_maps(input_size)
    return DetectorSpec(
        name="small-yolo-mobilenet-v1",
        algorithm="yolov4",
        params=tape.total_params,
        macs=tape.total_macs,
        num_anchors=num_anchors(maps),
        feature_maps=maps,
        num_classes=num_classes,
    )
