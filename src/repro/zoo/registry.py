"""Model registry and Table II generation.

Every architecture used in the paper's evaluation is registered here by the
name the tables use, so experiments and examples can look models up without
importing builder functions.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import RegistryError
from repro.zoo.faster_rcnn import build_faster_rcnn_vgg16
from repro.zoo.ssd import (
    DetectorSpec,
    build_small_model_1,
    build_small_model_2,
    build_small_model_3,
    build_ssd300_vgg16,
)
from repro.zoo.yolo import build_small_yolo_mobilenet_v1, build_yolov4

__all__ = ["list_models", "build_model", "model_zoo_table", "MODEL_BUILDERS"]

#: name -> builder(num_classes) for every architecture in the paper.
MODEL_BUILDERS: dict[str, Callable[[int], DetectorSpec]] = {
    "ssd": build_ssd300_vgg16,
    "small1": build_small_model_1,
    "small2": build_small_model_2,
    "small3": build_small_model_3,
    "yolov4": build_yolov4,
    "small-yolo": build_small_yolo_mobilenet_v1,
    "faster-rcnn": build_faster_rcnn_vgg16,
}

#: Paper aliases (Table II row names) -> registry names.
_ALIASES: dict[str, str] = {
    "ssd300": "ssd",
    "big": "ssd",
    "small model 1": "small1",
    "small model 2": "small2",
    "small model 3": "small3",
    "mobilenet-v1-ssd": "small2",
    "mobilenet-v2-ssd": "small3",
    "vgg-lite-ssd": "small1",
}


def list_models() -> list[str]:
    """Registered model names (canonical, sorted)."""
    return sorted(MODEL_BUILDERS)


def build_model(name: str, num_classes: int = 20) -> DetectorSpec:
    """Build a registered architecture by (possibly aliased) name."""
    key = _ALIASES.get(name.lower(), name.lower())
    try:
        builder = MODEL_BUILDERS[key]
    except KeyError:
        raise RegistryError(f"unknown model {name!r}; available: {', '.join(list_models())}") from None
    return builder(num_classes)


def model_zoo_table(num_classes: int = 20) -> list[dict[str, float | str]]:
    """Reproduce Table II: size, pruned ratio and GFLOPs per model.

    Rows appear in the paper's order (three small models then SSD); the
    pruned column is measured against the SSD big model.
    """
    big = build_model("ssd", num_classes)
    rows: list[dict[str, float | str]] = []
    for name in ("small1", "small2", "small3"):
        spec = build_model(name, num_classes)
        rows.append(
            {
                "model": name,
                "size_mib": round(spec.size_mib, 2),
                "pruned_percent": round(spec.pruned_ratio_vs(big), 2),
                "gflops": round(spec.gflops, 2),
            }
        )
    rows.append(
        {
            "model": "ssd",
            "size_mib": round(big.size_mib, 2),
            "pruned_percent": 0.0,
            "gflops": round(big.gflops, 2),
        }
    )
    return rows
