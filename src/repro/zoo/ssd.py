"""SSD detector assemblies: the big model and the three small models.

An SSD detector is backbone + extra feature layers (the "Neck") + per-map
detection heads.  The big model is the canonical SSD300-VGG16; the small
models follow Sec. IV.B's recipe: lightweight base network, *no 38x38
feature map*, SSD-style extra layers, heads on the remaining five maps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.detection.anchors import (
    FeatureMapSpec,
    num_anchors,
    ssd300_feature_maps,
    ssd300_small_feature_maps,
)
from repro.errors import ConfigurationError
from repro.zoo.backbones import (
    BackboneResult,
    mobilenet_v1_trunk,
    mobilenet_v2_trunk,
    vgg16_ssd_trunk,
    vgg_lite_trunk,
)
from repro.zoo.layers import Tape, TensorShape

__all__ = [
    "DetectorSpec",
    "build_ssd300_vgg16",
    "build_small_model_1",
    "build_small_model_2",
    "build_small_model_3",
]


@dataclass(frozen=True)
class DetectorSpec:
    """A fully assembled detector architecture with its cost figures."""

    name: str
    algorithm: str
    params: int
    macs: int
    num_anchors: int
    feature_maps: tuple[FeatureMapSpec, ...]
    num_classes: int

    @property
    def size_mib(self) -> float:
        """fp32 checkpoint size in MiB (the paper's "model size (MB)")."""
        return self.params * 4 / 2**20

    @property
    def flops(self) -> int:
        """Total FLOPs for one forward pass (2 x MACs)."""
        return 2 * self.macs

    @property
    def gflops(self) -> float:
        """FLOPs in units of 1e9, as Table II reports."""
        return self.flops / 1e9

    def pruned_ratio_vs(self, big: "DetectorSpec") -> float:
        """Size reduction relative to ``big`` in percent (Table II "Pruned")."""
        if big.params <= 0:
            raise ConfigurationError("reference model has no parameters")
        return 100.0 * (1.0 - self.params / big.params)


def _extra_feature_layers(tape: Tape, *, width_divisor: int = 1, prefix: str = "extra") -> list[TensorShape]:
    """SSD's eight extra feature layers producing the 10/5/3/1 maps.

    ``width_divisor`` thins the standard 256/512 widths for the small
    models (the paper leaves these widths unstated; divisor 2 reproduces the
    Table II budgets).  Returns the shapes of the four tapped maps.
    """
    c_mid, c_out = 256 // width_divisor, 512 // width_divisor
    taps: list[TensorShape] = []
    tape.conv(f"{prefix}8_1", c_mid, kernel=1)
    tape.conv(f"{prefix}8_2", c_out, kernel=3, stride=2, padding=1)
    taps.append(tape.shape)  # 10x10
    tape.conv(f"{prefix}9_1", c_mid // 2, kernel=1)
    tape.conv(f"{prefix}9_2", c_out // 2, kernel=3, stride=2, padding=1)
    taps.append(tape.shape)  # 5x5
    tape.conv(f"{prefix}10_1", c_mid // 2, kernel=1)
    tape.conv(f"{prefix}10_2", c_out // 2, kernel=3, stride=1, padding=0)
    taps.append(tape.shape)  # 3x3
    tape.conv(f"{prefix}11_1", c_mid // 2, kernel=1)
    tape.conv(f"{prefix}11_2", c_out // 2, kernel=3, stride=1, padding=0)
    taps.append(tape.shape)  # 1x1
    return taps


def _attach_heads(
    tape: Tape,
    map_shapes: list[TensorShape],
    maps: tuple[FeatureMapSpec, ...],
    num_classes: int,
) -> None:
    """Per-map localisation (4k) and classification ((C+1)k) 3x3 heads."""
    if len(map_shapes) != len(maps):
        raise ConfigurationError(f"{len(map_shapes)} tapped maps for {len(maps)} anchor specs")
    for index, (shape, spec) in enumerate(zip(map_shapes, maps)):
        if shape.height != spec.size:
            raise ConfigurationError(f"head {index}: tapped map is {shape.height}, anchors expect " f"{spec.size}")
        k = spec.boxes_per_location
        tape.goto(shape)
        tape.conv(f"head{index}/loc", 4 * k, kernel=3)
        tape.goto(shape)
        tape.conv(f"head{index}/cls", (num_classes + 1) * k, kernel=3)


def _assemble(
    name: str,
    backbone: BackboneResult,
    base_tap: str,
    maps: tuple[FeatureMapSpec, ...],
    num_classes: int,
    *,
    extra_width_divisor: int = 1,
    extra_taps_first: list[TensorShape] | None = None,
) -> DetectorSpec:
    """Common SSD assembly: extras after the base tap, heads on every map."""
    tape = backbone.tape
    head_maps: list[TensorShape] = list(extra_taps_first or [])
    head_maps.append(backbone.taps[base_tap])
    tape.goto(backbone.taps[base_tap])
    head_maps.extend(_extra_feature_layers(tape, width_divisor=extra_width_divisor))
    _attach_heads(tape, head_maps, maps, num_classes)
    return DetectorSpec(
        name=name,
        algorithm="ssd",
        params=tape.total_params,
        macs=tape.total_macs,
        num_anchors=num_anchors(maps),
        feature_maps=maps,
        num_classes=num_classes,
    )


def build_ssd300_vgg16(num_classes: int = 20) -> DetectorSpec:
    """The big model: canonical SSD300 with a VGG16 base network.

    Six feature maps (38/19/10/5/3/1), 8 732 default boxes.  With 20 VOC
    classes this evaluates to ~26.3 M parameters = ~100.3 MiB and ~61
    GFLOPs — Table II's SSD row.
    """
    backbone = vgg16_ssd_trunk()
    maps = ssd300_feature_maps()
    return _assemble(
        "ssd300-vgg16",
        backbone,
        base_tap="conv7",
        maps=maps,
        num_classes=num_classes,
        extra_taps_first=[backbone.taps["conv4_3"]],
    )


def build_small_model_1(num_classes: int = 20) -> DetectorSpec:
    """Small model 1: the paper's hand-designed VGG-Lite SSD (Sec. IV.B).

    VGG-Lite + Conv6&7, no 38x38 map (five maps, 2 956 default boxes — the
    small model keeps only 34 % of SSD's box budget), thinned extra layers.
    """
    backbone = vgg_lite_trunk()
    return _assemble(
        "small1-vgg-lite-ssd",
        backbone,
        base_tap="conv7",
        maps=ssd300_small_feature_maps(),
        num_classes=num_classes,
        extra_width_divisor=2,
    )


def build_small_model_2(num_classes: int = 20) -> DetectorSpec:
    """Small model 2: MobileNetV1 base network, same SSD small recipe."""
    backbone = mobilenet_v1_trunk(width_multiplier=0.75, truncate_at_stride=16)
    tape = backbone.tape
    tape.goto(backbone.taps["final"])
    tape.conv("conv7", 512, kernel=1)
    backbone.taps["conv7"] = tape.shape
    return _assemble(
        "small2-mobilenet-v1-ssd",
        backbone,
        base_tap="conv7",
        maps=ssd300_small_feature_maps(),
        num_classes=num_classes,
        extra_width_divisor=2,
    )


def build_small_model_3(num_classes: int = 20) -> DetectorSpec:
    """Small model 3: MobileNetV2 base network, the lightest configuration."""
    backbone = mobilenet_v2_trunk(width_multiplier=0.75, truncate_at_stride=16)
    tape = backbone.tape
    tape.goto(backbone.taps["final"])
    tape.conv("conv7", 384, kernel=1)
    backbone.taps["conv7"] = tape.shape
    return _assemble(
        "small3-mobilenet-v2-ssd",
        backbone,
        base_tap="conv7",
        maps=ssd300_small_feature_maps(),
        num_classes=num_classes,
        extra_width_divisor=4,
    )
