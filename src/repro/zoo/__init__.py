"""Model-architecture substrate: analytic specs for every detector used."""

from repro.zoo.autocompress import (
    CompressionResult,
    SmallModelConfig,
    build_candidate,
    predict_profile,
    search_configuration,
)
from repro.zoo.backbones import (
    BackboneResult,
    cspdarknet53_trunk,
    mobilenet_v1_trunk,
    mobilenet_v2_trunk,
    vgg16_ssd_trunk,
    vgg_lite_trunk,
)
from repro.zoo.faster_rcnn import build_faster_rcnn_vgg16, faster_rcnn_feature_maps
from repro.zoo.layers import BYTES_PER_PARAM_FP32, LayerStat, Tape, TensorShape
from repro.zoo.registry import MODEL_BUILDERS, build_model, list_models, model_zoo_table
from repro.zoo.ssd import (
    DetectorSpec,
    build_small_model_1,
    build_small_model_2,
    build_small_model_3,
    build_ssd300_vgg16,
)
from repro.zoo.yolo import (
    build_small_yolo_mobilenet_v1,
    build_yolov4,
    yolo_small_feature_maps,
)

__all__ = [
    "CompressionResult",
    "SmallModelConfig",
    "build_candidate",
    "predict_profile",
    "search_configuration",
    "build_faster_rcnn_vgg16",
    "faster_rcnn_feature_maps",
    "BackboneResult",
    "cspdarknet53_trunk",
    "mobilenet_v1_trunk",
    "mobilenet_v2_trunk",
    "vgg16_ssd_trunk",
    "vgg_lite_trunk",
    "BYTES_PER_PARAM_FP32",
    "LayerStat",
    "Tape",
    "TensorShape",
    "MODEL_BUILDERS",
    "build_model",
    "list_models",
    "model_zoo_table",
    "DetectorSpec",
    "build_small_model_1",
    "build_small_model_2",
    "build_small_model_3",
    "build_ssd300_vgg16",
    "build_yolov4",
    "build_small_yolo_mobilenet_v1",
    "yolo_small_feature_maps",
]
