"""Analytic layer primitives: parameter and FLOP accounting.

The paper's Table II reports model size (MiB of fp32 weights), pruned ratio
and FLOPs for the three small models and SSD.  Because the evaluation
environment has no deep-learning framework, we reproduce those numbers
*analytically*: every architecture is described layer by layer and this
module computes exact parameter counts and multiply-accumulate operations.

Conventions
-----------
* ``FLOPs = 2 x MACs`` (one multiply + one add), which is the convention
  under which SSD300-VGG16 evaluates to ~61 GFLOPs — the figure the paper
  reports.
* Batch-norm layers contribute their learnable affine parameters (2 per
  channel); running statistics are buffers, not weights.
* Shapes are ``(channels, height, width)``; convolutions use "same" padding
  unless ``padding`` is given explicitly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = ["TensorShape", "LayerStat", "Tape", "BYTES_PER_PARAM_FP32"]

#: fp32 storage cost used for the "model size (MB)" column of Table II.
BYTES_PER_PARAM_FP32 = 4


@dataclass(frozen=True)
class TensorShape:
    """Shape of an activation tensor, ``(channels, height, width)``."""

    channels: int
    height: int
    width: int

    def __post_init__(self) -> None:
        if self.channels <= 0 or self.height <= 0 or self.width <= 0:
            raise ConfigurationError(f"degenerate tensor shape {self}")

    @property
    def spatial(self) -> int:
        """Number of spatial positions."""
        return self.height * self.width


@dataclass(frozen=True)
class LayerStat:
    """Cost record of a single layer."""

    name: str
    params: int
    macs: int
    out_shape: TensorShape

    @property
    def flops(self) -> int:
        """Floating-point operations (2 per MAC)."""
        return 2 * self.macs


def _conv_out_size(size: int, kernel: int, stride: int, padding: int) -> int:
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ConfigurationError(
            f"convolution output collapsed to {out} "
            f"(size={size}, kernel={kernel}, stride={stride}, padding={padding})"
        )
    return out


@dataclass
class Tape:
    """Accumulates layer statistics while "executing" an architecture.

    A ``Tape`` behaves like a symbolic forward pass: each method consumes the
    current activation shape, records a :class:`LayerStat` and produces the
    next shape.  Branches (feature-pyramid taps, residual side paths) are
    expressed by saving :attr:`shape` and restoring it with :meth:`goto`.
    """

    shape: TensorShape
    stats: list[LayerStat] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # primitives
    # ------------------------------------------------------------------ #
    def conv(
        self,
        name: str,
        out_channels: int,
        *,
        kernel: int = 3,
        stride: int = 1,
        padding: int | None = None,
        groups: int = 1,
        bias: bool = True,
        batch_norm: bool = False,
    ) -> TensorShape:
        """2-D convolution (optionally grouped / depthwise via ``groups``)."""
        in_c = self.shape.channels
        if in_c % groups or out_channels % groups:
            raise ConfigurationError(f"{name}: channels ({in_c}->{out_channels}) not divisible by " f"groups={groups}")
        pad = (kernel - 1) // 2 if padding is None else padding
        out_h = _conv_out_size(self.shape.height, kernel, stride, pad)
        out_w = _conv_out_size(self.shape.width, kernel, stride, pad)
        weight = kernel * kernel * (in_c // groups) * out_channels
        params = weight + (out_channels if bias else 0)
        if batch_norm:
            params += 2 * out_channels
        macs = weight * out_h * out_w
        out_shape = TensorShape(out_channels, out_h, out_w)
        self.stats.append(LayerStat(name, params, macs, out_shape))
        self.shape = out_shape
        return out_shape

    def depthwise(
        self,
        name: str,
        *,
        kernel: int = 3,
        stride: int = 1,
        batch_norm: bool = True,
    ) -> TensorShape:
        """Depthwise convolution (groups == channels)."""
        channels = self.shape.channels
        return self.conv(
            name,
            channels,
            kernel=kernel,
            stride=stride,
            groups=channels,
            bias=not batch_norm,
            batch_norm=batch_norm,
        )

    def pointwise(
        self,
        name: str,
        out_channels: int,
        *,
        batch_norm: bool = True,
    ) -> TensorShape:
        """1x1 convolution."""
        return self.conv(
            name,
            out_channels,
            kernel=1,
            bias=not batch_norm,
            batch_norm=batch_norm,
        )

    def max_pool(
        self,
        name: str,
        *,
        kernel: int = 2,
        stride: int | None = None,
        padding: int = 0,
        ceil_mode: bool = False,
    ) -> TensorShape:
        """Max pooling: no parameters; comparisons are not counted as MACs."""
        stride = kernel if stride is None else stride
        size_fn = math.ceil if ceil_mode else math.floor
        out_h = int(size_fn((self.shape.height + 2 * padding - kernel) / stride)) + 1
        out_w = int(size_fn((self.shape.width + 2 * padding - kernel) / stride)) + 1
        if out_h <= 0 or out_w <= 0:
            raise ConfigurationError(f"{name}: pooling collapsed the feature map")
        out_shape = TensorShape(self.shape.channels, out_h, out_w)
        self.stats.append(LayerStat(name, 0, 0, out_shape))
        self.shape = out_shape
        return out_shape

    def l2_norm(self, name: str) -> TensorShape:
        """SSD's conv4_3 L2Norm layer: one scale parameter per channel."""
        params = self.shape.channels
        macs = self.shape.channels * self.shape.spatial
        self.stats.append(LayerStat(name, params, macs, self.shape))
        return self.shape

    def goto(self, shape: TensorShape) -> TensorShape:
        """Restore the cursor to a previously saved shape (branching)."""
        self.shape = shape
        return shape

    # ------------------------------------------------------------------ #
    # composites
    # ------------------------------------------------------------------ #
    def depthwise_separable(
        self,
        name: str,
        out_channels: int,
        *,
        stride: int = 1,
    ) -> TensorShape:
        """MobileNetV1 block: 3x3 depthwise followed by 1x1 pointwise."""
        self.depthwise(f"{name}/dw", stride=stride)
        return self.pointwise(f"{name}/pw", out_channels)

    def inverted_residual(
        self,
        name: str,
        out_channels: int,
        *,
        expansion: int = 6,
        stride: int = 1,
    ) -> TensorShape:
        """MobileNetV2 block: expand (1x1) -> depthwise (3x3) -> project (1x1).

        The residual add is free in parameters and negligible in MACs, so it
        is not recorded separately.
        """
        hidden = self.shape.channels * expansion
        if expansion != 1:
            self.pointwise(f"{name}/expand", hidden)
        self.depthwise(f"{name}/dw", stride=stride)
        return self.pointwise(f"{name}/project", out_channels)

    # ------------------------------------------------------------------ #
    # aggregation
    # ------------------------------------------------------------------ #
    @property
    def total_params(self) -> int:
        """Total learnable parameters recorded so far."""
        return sum(stat.params for stat in self.stats)

    @property
    def total_macs(self) -> int:
        """Total multiply-accumulates recorded so far."""
        return sum(stat.macs for stat in self.stats)

    @property
    def total_flops(self) -> int:
        """Total FLOPs (2 x MACs)."""
        return 2 * self.total_macs

    @property
    def size_mib(self) -> float:
        """fp32 checkpoint size in MiB — the paper's "model size (MB)"."""
        return self.total_params * BYTES_PER_PARAM_FP32 / 2**20

    def merge(self, other: "Tape") -> None:
        """Append another tape's records (used to combine trunk + heads)."""
        self.stats.extend(other.stats)
