"""Automatic small-model compression (the paper's Sec. VII future work).

    "In the future, we will design automatic object detection model
     compression, that is, the users only need to select the object
     detection models in the cloud, and then a lightweight object detection
     model suitable for given edge devices and the difficult-case
     discriminator can be automatically obtained."

This module implements that loop for the SSD family: given a size and/or
FLOPs budget (the edge device's constraints), it searches the small-model
design space of Sec. IV.B — base-network width, extra-feature-layer width,
Conv7 width — and returns the largest candidate that fits, together with a
*predicted* capability profile so the rest of the pipeline (calibration,
discriminator fitting, the small-big system) can run unchanged.

The capability prediction is a documented heuristic, not magic: within one
architecture family, recall scales with compute and the area/crowding
response scales with the anchor budget and trunk capacity.  The constants
are anchored at small model 1's calibrated profile.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from itertools import product

from repro.detection.anchors import ssd300_small_feature_maps
from repro.errors import ConfigurationError
from repro.simulate.profile import DetectorProfile
from repro.zoo.backbones import (
    mobilenet_v1_trunk,
    mobilenet_v2_trunk,
    vgg_lite_trunk,
)
from repro.zoo.ssd import DetectorSpec, _assemble, build_small_model_1

__all__ = [
    "SmallModelConfig",
    "CompressionResult",
    "build_candidate",
    "predict_profile",
    "search_configuration",
]

_BASES = ("vgg-lite", "mobilenet-v1", "mobilenet-v2")

#: Search grids (kept coarse on purpose: each point is an exact analytic
#: build, so the whole space evaluates in well under a second).
_WIDTHS = (0.25, 0.375, 0.5, 0.625, 0.75, 1.0, 1.25)
_EXTRA_DIVISORS = (1, 2, 4)
_CONV7_WIDTHS = (256, 384, 512, 768, 1024)


@dataclass(frozen=True)
class SmallModelConfig:
    """One point in the small-model design space of Sec. IV.B."""

    base: str = "vgg-lite"
    width_multiplier: float = 0.625
    extras_divisor: int = 2
    conv7_channels: int = 1024

    def __post_init__(self) -> None:
        if self.base not in _BASES:
            raise ConfigurationError(f"unknown base {self.base!r}; expected one of {_BASES}")
        if not 0.1 <= self.width_multiplier <= 2.0:
            raise ConfigurationError("width_multiplier out of range [0.1, 2]")
        if self.extras_divisor not in (1, 2, 4, 8):
            raise ConfigurationError("extras_divisor must be one of 1/2/4/8")
        if self.conv7_channels < 64:
            raise ConfigurationError("conv7_channels must be >= 64")


@dataclass(frozen=True)
class CompressionResult:
    """Outcome of an automatic compression search."""

    config: SmallModelConfig
    spec: DetectorSpec
    predicted_profile: DetectorProfile
    size_budget_mib: float | None
    flops_budget_g: float | None


def build_candidate(config: SmallModelConfig, num_classes: int = 20) -> DetectorSpec:
    """Materialise one configuration as an analytic detector spec.

    All candidates follow the small-model recipe: no 38x38 feature map,
    SSD-style extra layers, heads on the remaining five maps.
    """
    if config.base == "vgg-lite":
        backbone = vgg_lite_trunk(
            width_multiplier=config.width_multiplier,
            conv7_channels=config.conv7_channels,
        )
    elif config.base == "mobilenet-v1":
        backbone = mobilenet_v1_trunk(width_multiplier=config.width_multiplier, truncate_at_stride=16)
        tape = backbone.tape
        tape.goto(backbone.taps["final"])
        tape.conv("conv7", config.conv7_channels, kernel=1)
        backbone.taps["conv7"] = tape.shape
    else:  # mobilenet-v2
        backbone = mobilenet_v2_trunk(width_multiplier=config.width_multiplier, truncate_at_stride=16)
        tape = backbone.tape
        tape.goto(backbone.taps["final"])
        tape.conv("conv7", config.conv7_channels, kernel=1)
        backbone.taps["conv7"] = tape.shape
    name = f"auto-{config.base}-w{config.width_multiplier:g}" f"-e{config.extras_divisor}-c{config.conv7_channels}"
    return _assemble(
        name,
        backbone,
        base_tap="conv7",
        maps=ssd300_small_feature_maps(),
        num_classes=num_classes,
        extra_width_divisor=config.extras_divisor,
    )


def predict_profile(
    spec: DetectorSpec,
    reference_profile: DetectorProfile,
    *,
    reference_spec: DetectorSpec | None = None,
) -> DetectorProfile:
    """Predict a capability profile for an unseen small model.

    Heuristic, anchored at a calibrated reference (small model 1 by
    default):

    * ``area_half`` shrinks with compute — more FLOPs buys small-object
      recall — with elasticity 0.35;
    * ``crowd_half`` grows with parameter count (capacity to keep crowded
      scenes apart), elasticity 0.5;
    * ``base_recall`` scales with compute, elasticity 0.2 (diminishing
      returns), and is recalibrated downstream anyway.
    """
    reference = reference_spec if reference_spec is not None else build_small_model_1()
    flops_ratio = max(spec.flops / reference.flops, 1e-3)
    params_ratio = max(spec.params / reference.params, 1e-3)
    return replace(
        reference_profile,
        name=f"{spec.name}@predicted",
        area_half=float(reference_profile.area_half * flops_ratio**-0.35),
        crowd_half=float(reference_profile.crowd_half * params_ratio**0.5),
        base_recall=float(reference_profile.base_recall * flops_ratio**0.2),
    )


def search_configuration(
    *,
    size_budget_mib: float | None = None,
    flops_budget_g: float | None = None,
    base: str | None = None,
    num_classes: int = 20,
    reference_profile: DetectorProfile | None = None,
) -> CompressionResult:
    """Find the most capable small model within the given budgets.

    At least one budget must be supplied.  Candidates are ranked by FLOPs
    (compute buys recall within a family), with parameter count as the
    tie-break; the heuristic profile of the winner is attached so the
    caller can calibrate and deploy it directly.
    """
    if size_budget_mib is None and flops_budget_g is None:
        raise ConfigurationError("supply a size and/or FLOPs budget")
    if size_budget_mib is not None and size_budget_mib <= 0:
        raise ConfigurationError("size budget must be positive")
    if flops_budget_g is not None and flops_budget_g <= 0:
        raise ConfigurationError("FLOPs budget must be positive")
    bases = (base,) if base is not None else _BASES

    best: tuple[float, float, SmallModelConfig, DetectorSpec] | None = None
    for candidate_base, width, divisor, conv7 in product(bases, _WIDTHS, _EXTRA_DIVISORS, _CONV7_WIDTHS):
        try:
            config = SmallModelConfig(
                base=candidate_base,
                width_multiplier=width,
                extras_divisor=divisor,
                conv7_channels=conv7,
            )
            spec = build_candidate(config, num_classes)
        except ConfigurationError:
            continue
        if size_budget_mib is not None and spec.size_mib > size_budget_mib:
            continue
        if flops_budget_g is not None and spec.gflops > flops_budget_g:
            continue
        key = (spec.gflops, spec.params)
        if best is None or key > (best[0], best[1]):
            best = (spec.gflops, float(spec.params), config, spec)
    if best is None:
        raise ConfigurationError(
            f"no configuration fits within size<={size_budget_mib} MiB, "
            f"flops<={flops_budget_g} GFLOPs"
        )
    _, _, config, spec = best
    if reference_profile is None:
        from repro.simulate.presets import SHAPE_PRESETS

        reference_profile = SHAPE_PRESETS["small1"]
    return CompressionResult(
        config=config,
        spec=spec,
        predicted_profile=predict_profile(spec, reference_profile),
        size_budget_mib=size_budget_mib,
        flops_budget_g=flops_budget_g,
    )
