"""Faster R-CNN architecture spec — two-stage big-model support.

The paper's footnote 1 states "Our framework can also be applied for
Two-Stage algorithms"; this module makes that concrete by providing the
canonical two-stage detector (Ren et al., 2017: VGG16 + RPN + Fast R-CNN
head) as an analytic spec, plus a capability preset, so the small-big
system can pair any small model with a two-stage cloud model.

Cost accounting
---------------
Two-stage cost is input-dependent (per-RoI head work); following common
practice we account for a fixed RoI budget (300 proposals after NMS, the
test-time default) so the spec remains a single number the runtime model
can consume.
"""

from __future__ import annotations

from repro.detection.anchors import FeatureMapSpec, num_anchors
from repro.zoo.backbones import vgg16_ssd_trunk
from repro.zoo.layers import Tape, TensorShape
from repro.zoo.ssd import DetectorSpec

__all__ = ["build_faster_rcnn_vgg16", "faster_rcnn_feature_maps"]

#: Test-time RoI budget (proposals entering the second stage).
_ROI_BUDGET = 300

#: RoI pooling output resolution.
_ROI_POOL = 7


def faster_rcnn_feature_maps(input_size: int = 600) -> tuple[FeatureMapSpec, ...]:
    """The RPN anchor grid: one stride-16 map, 3 scales x 3 ratios.

    At the canonical 600-pixel input this is a 37x37 map with 9 anchors per
    location (12 321 anchors).
    """
    size = input_size // 16
    return (
        FeatureMapSpec(
            size=size,
            scale=0.25,
            next_scale=0.5,
            aspect_ratios=(2.0, 3.0, 1.5),
        ),
    )


def build_faster_rcnn_vgg16(num_classes: int = 20, input_size: int = 600) -> DetectorSpec:
    """Faster R-CNN with a VGG16 backbone at a 600-pixel input.

    Stage 1 (RPN): 3x3x512 conv + 1x1 objectness/box heads over the
    stride-16 map.  Stage 2: fc6/fc7 (4096-d) over each pooled 7x7x512 RoI
    plus per-class classification/regression heads, charged for the fixed
    RoI budget.  Evaluates to ~137 M parameters — the published VGG16
    Faster R-CNN weight count.
    """
    backbone = vgg16_ssd_trunk(input_size)
    tape = backbone.tape
    # Faster R-CNN taps conv5_3 (stride 16) rather than SSD's conv7; the
    # SSD-specific conv6/conv7 stats are removed from the tape.
    tape.stats = [
        stat for stat in tape.stats if stat.name not in ("conv6", "conv7", "pool5")
    ]
    stride16 = TensorShape(512, input_size // 16, input_size // 16)

    # --- stage 1: region proposal network -------------------------------- #
    tape.goto(stride16)
    tape.conv("rpn/conv", 512, kernel=3)
    anchors_per_loc = faster_rcnn_feature_maps(input_size)[0].boxes_per_location
    tape.goto(stride16)
    tape.conv("rpn/objectness", anchors_per_loc * 2, kernel=1)
    tape.goto(stride16)
    tape.conv("rpn/boxes", anchors_per_loc * 4, kernel=1)

    # --- stage 2: per-RoI head, charged for the RoI budget ---------------- #
    roi_tape = Tape(TensorShape(512, _ROI_POOL, _ROI_POOL))
    roi_features = 512 * _ROI_POOL * _ROI_POOL
    # fc6: (512*7*7) -> 4096, fc7: 4096 -> 4096, modelled as 1x1 convs over
    # a 1x1 spatial map so Tape accounting applies.
    roi_tape.goto(TensorShape(roi_features, 1, 1))
    roi_tape.conv("head/fc6", 4096, kernel=1)
    roi_tape.conv("head/fc7", 4096, kernel=1)
    roi_tape.goto(TensorShape(4096, 1, 1))
    roi_tape.conv("head/cls", num_classes + 1, kernel=1)
    roi_tape.goto(TensorShape(4096, 1, 1))
    roi_tape.conv("head/reg", 4 * num_classes, kernel=1)

    head_params = roi_tape.total_params
    head_macs_per_roi = roi_tape.total_macs
    total_params = tape.total_params + head_params
    total_macs = tape.total_macs + head_macs_per_roi * _ROI_BUDGET

    maps = faster_rcnn_feature_maps(input_size)
    return DetectorSpec(
        name="faster-rcnn-vgg16",
        algorithm="faster-rcnn",
        params=total_params,
        macs=total_macs,
        num_anchors=num_anchors(maps),
        feature_maps=maps,
        num_classes=num_classes,
    )
