"""Table 16 bench: e2e mAP — top-1-confidence uploading vs the discriminator."""

from __future__ import annotations

from repro.experiments import table_16_confidence_map


def test_table16_confidence_map(benchmark, harness, emit):
    result = benchmark.pedantic(
        table_16_confidence_map, args=(harness,), rounds=1, iterations=1
    )
    emit(result, "table16")
    # Paper: our semantic-based strategy beats the top-1-confidence baseline on
    # every dataset at the same upload quota (by 3.5-8 mAP points).
    for row in result.rows:
        assert row["ours_e2e_map"] > row["baseline_e2e_map"], row["setting"]
        assert row["ours_e2e_map"] - row["baseline_e2e_map"] > 1.0, row["setting"]
