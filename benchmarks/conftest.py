"""Shared benchmark fixtures.

The benchmarks run at the *full* paper scale (all 4 952 / 4 914 / 1 000 test
images, 5 000-image training subsets for the threshold fits).  A single
session-scoped harness memoises detections and fits, and a persistent disk
cache under ``.repro_cache/`` makes re-runs fast.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import Harness, HarnessConfig
from repro.experiments.formatting import format_figure, format_table

OUTPUT_DIR = Path(__file__).parent / "_output"


@pytest.fixture(scope="session")
def harness() -> Harness:
    """Full-scale experiment harness shared by every benchmark.

    Worker count comes from ``REPRO_WORKERS`` (serial when unset); the
    harness-lifetime pool — shared by every ``detections()`` call and the
    suite scheduler — is shut down when the benchmark session ends.
    """
    with Harness(HarnessConfig()) as shared:
        yield shared


@pytest.fixture(scope="session")
def emit():
    """Write a rendered table/figure to benchmarks/_output/ and stdout."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _emit(result, stem: str) -> None:
        if hasattr(result, "table_id"):
            rendered = format_table(result)
        else:
            rendered = format_figure(result)
        (OUTPUT_DIR / f"{stem}.txt").write_text(rendered + "\n")
        print()
        print(rendered)

    return _emit
