"""Figure 8 bench: end-to-end mAP under different upload ratios."""

from __future__ import annotations

import numpy as np

from repro.experiments import figure_08_map_vs_upload


def test_fig08_map_vs_upload(benchmark, harness, emit):
    figure = benchmark.pedantic(
        figure_08_map_vs_upload, args=(harness,), rounds=1, iterations=1
    )
    emit(figure, "fig08")

    maps = np.asarray(figure.series["e2e_map"])
    fraction = np.asarray(figure.series["fraction_of_cloud_only"])

    # Monotone climb from small-only to cloud-only.
    assert maps[0] < maps[-1]
    assert (np.diff(maps) >= -0.8).all()
    # Paper: at 50 % upload, mAP reaches ~90 % of the cloud-only value —
    # the parabola's turning point.
    assert fraction[5] >= 0.88
    # Concavity (diminishing returns): the first half of the climb buys
    # clearly more than the second half.
    assert maps[5] - maps[0] > 1.5 * (maps[10] - maps[5])
