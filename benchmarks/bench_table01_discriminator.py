"""Table I bench: discriminator quality with ground-truth vs predicted features."""

from __future__ import annotations

from repro.experiments import table_01_discriminator


def test_table01_discriminator(benchmark, harness, emit):
    result = benchmark.pedantic(
        table_01_discriminator, args=(harness,), rounds=1, iterations=1
    )
    emit(result, "table01")

    gt_row = result.row_for("features", "Ground Truth")
    pred_row = result.row_for("features", "Predicted")
    # Paper: GT features reach 85.35 % accuracy / 98.24 % recall on train.
    assert gt_row["accuracy"] > 78.0
    assert gt_row["recall"] > 92.0
    # Paper: predicted features on test drop to 78.35 % accuracy.
    assert pred_row["accuracy"] > 65.0
    assert pred_row["accuracy"] <= gt_row["accuracy"] + 2.0
    # The fitted thresholds land in the paper's neighbourhood.
    assert "count=" in result.notes
