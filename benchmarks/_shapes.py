"""Shared shape assertions for the mAP / count benchmark tables.

The reproduction criterion (DESIGN.md Sec. 4) is the paper's *shape*:
orderings, rough factors and knees — not absolute agreement.
"""

from __future__ import annotations

from repro.experiments.results import TableResult

__all__ = ["assert_map_table_shape", "assert_counts_table_shape"]


def assert_map_table_shape(
    result: TableResult,
    *,
    upload_lo: float = 30.0,
    upload_hi: float = 70.0,
    e2e_fraction_floor: float = 0.85,
) -> None:
    """Every data row: small < e2e <= big, upload in range, e2e near big."""
    for row in result.rows[:-1]:
        setting = row["setting"]
        assert row["small_map"] < row["e2e_map"], setting
        assert row["e2e_map"] <= row["big_map"] + 2.0, setting
        assert upload_lo <= row["upload_percent"] <= upload_hi, setting
        assert row["e2e_map"] >= e2e_fraction_floor * row["big_map"], setting
    average = result.rows[-1]
    assert average["setting"] == "Average"
    assert upload_lo <= average["upload_percent"] <= upload_hi


def assert_counts_table_shape(
    result: TableResult,
    *,
    ratio_floor: float = 90.0,
) -> None:
    """Every data row: small < e2e <= big and e2e/big above the floor."""
    for row in result.rows[:-1]:
        setting = row["setting"]
        assert row["small"] < row["e2e"], setting
        assert row["e2e"] <= row["big"] * 1.02, setting
        assert row["e2e_over_big_percent"] >= ratio_floor, setting
    assert result.rows[-1]["e2e_over_big_percent"] >= ratio_floor
