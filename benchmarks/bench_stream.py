"""Micro-benchmarks of the event-driven serving engine's hot loop.

The fleet simulator multiplies event volume (cameras x frames x pipeline
stages), so the discrete-event core and the stream engine are tracked by
the bench-micro regression gate alongside the detection kernels.  All
cases here are harness-free (no detection artifacts) so the gate stays
cheap on cold CI runners.
"""

from __future__ import annotations

import pytest

from repro.data import load_dataset
from repro.runtime import (
    JETSON_NANO,
    RTX3060_SERVER,
    WLAN,
    CameraSpec,
    DeadlineAware,
    Deployment,
    DropOldest,
    EscalationPolicy,
    EstimatedDeadlineAware,
    EventLoop,
    FifoResource,
    OutageSchedule,
    RateSchedule,
    StreamConfig,
    UnreliableLink,
    bundled_trace,
    cloud_only_scheme,
    collaborative_scheme,
    edge_only_scheme,
    simulate_fleet,
    simulate_stream,
)


@pytest.fixture(scope="module")
def helmet_slice():
    return load_dataset("helmet", "test", fraction=0.1)


@pytest.fixture(scope="module")
def deployment():
    return Deployment(
        edge=JETSON_NANO,
        cloud=RTX3060_SERVER,
        link=WLAN,
        small_model_flops=5.6e9,
        big_model_flops=61.2e9,
    )


@pytest.fixture(scope="module")
def half_mask(helmet_slice):
    import numpy as np

    mask = np.zeros(len(helmet_slice), dtype=bool)
    mask[::2] = True
    return mask


def test_micro_event_loop_10k_chained(benchmark):
    """Heap throughput: 10k events, each scheduling its successor."""

    def run() -> float:
        loop = EventLoop()
        remaining = [10_000]

        def tick() -> None:
            if remaining[0] > 0:
                remaining[0] -= 1
                loop.schedule(0.001, tick)

        loop.schedule(0.0, tick)
        return loop.run()

    final = benchmark(run)
    assert final == pytest.approx(10.0, rel=1e-6)


def test_micro_fifo_resource_5k_jobs(benchmark):
    """Queue discipline throughput: 5k jobs through one busy resource."""

    def run() -> int:
        loop = EventLoop()
        resource = FifoResource(loop, "dev")
        for _ in range(5_000):
            resource.acquire(0.01, lambda _t: None)
        loop.run()
        return resource.jobs_served

    assert benchmark(run) == 5_000


def test_micro_stream_collaborative_1200_frames(benchmark, deployment, helmet_slice, half_mask):
    """Single-stream engine: ~1200 frames through the three-stage pipeline."""
    config = StreamConfig(fps=40.0, duration_s=30.0, poisson=False, max_edge_queue=30)

    def run():
        return simulate_stream(
            collaborative_scheme(),
            deployment,
            helmet_slice,
            config,
            mask=half_mask,
            seed=1,
        )

    report = benchmark(run)
    assert report.frames_offered == 1200
    assert report.frames_served + report.frames_dropped == report.frames_offered


def test_micro_fleet_8_cameras(benchmark, deployment, helmet_slice):
    """Fleet engine: 8 cameras contending for one uplink and cloud GPU."""
    config = StreamConfig(fps=5.0, duration_s=20.0, poisson=False, max_edge_queue=30)

    def run():
        return simulate_fleet(
            cloud_only_scheme(),
            deployment,
            helmet_slice,
            config,
            cameras=8,
            seed=1,
        )

    report = benchmark(run)
    assert len(report.cameras) == 8
    assert report.frames_offered == 8 * 100


def test_micro_fleet_8_cameras_deadline_aware(benchmark, deployment, helmet_slice):
    """Admission-control hot path: deadline sheds on the saturated fleet.

    Same workload as the plain fleet case, but every arrival runs the
    deadline-aware shed scan (queued-wait bounds + cancellations) — the
    admission layer's worst case.
    """
    config = StreamConfig(fps=5.0, duration_s=20.0, poisson=False, max_edge_queue=30)

    def run():
        return simulate_fleet(
            cloud_only_scheme(),
            deployment,
            helmet_slice,
            config,
            cameras=8,
            admission=DeadlineAware(freshness_s=2.0),
            seed=1,
        )

    report = benchmark(run)
    assert report.frames_offered == 8 * 100
    assert report.frames_shed > 0
    assert report.frames_served + report.frames_dropped == report.frames_offered


@pytest.fixture(scope="module")
def outage_deployment(deployment):
    # 30% downtime (down 3 s of every 10) plus 5% per-transfer loss over the
    # 20 s fleet workload — the Table XX failure regime at bench scale.
    outages = OutageSchedule.periodic(period_s=10.0, downtime_s=3.0, duration_s=20.0)
    return Deployment(
        edge=deployment.edge,
        cloud=deployment.cloud,
        link=UnreliableLink.wrap(deployment.link, outages=outages, loss_probability=0.05),
        small_model_flops=deployment.small_model_flops,
        big_model_flops=deployment.big_model_flops,
    )


def test_micro_fleet_8_cameras_outage_drop(benchmark, outage_deployment, helmet_slice):
    """Failure-injection hot path: saturated fleet, failures dropped.

    Same workload as the plain fleet case, but every uplink acquire runs
    the fault hook and outage windows fail transfers mid-flight — the
    failure layer's overhead without any retry traffic.
    """
    config = StreamConfig(fps=5.0, duration_s=20.0, poisson=False, max_edge_queue=30)

    def run():
        return simulate_fleet(
            cloud_only_scheme(),
            outage_deployment,
            helmet_slice,
            config,
            cameras=8,
            seed=1,
        )

    report = benchmark(run)
    assert report.frames_offered == 8 * 100
    assert report.escalations_failed > 0
    assert report.escalations_recovered == 0
    assert report.frames_served + report.frames_dropped == report.frames_offered


def test_micro_fleet_8_cameras_outage_durable(benchmark, outage_deployment, helmet_slice):
    """Durable-queue hot path: spool, backoff timers and retry traffic.

    The same saturated outage fleet with the durable escalation queue: every
    failed transfer is spooled and replayed with exponential backoff, so the
    run pays the queue bookkeeping plus the extra retry events.
    """
    config = StreamConfig(fps=5.0, duration_s=20.0, poisson=False, max_edge_queue=30)

    def run():
        return simulate_fleet(
            cloud_only_scheme(),
            outage_deployment,
            helmet_slice,
            config,
            cameras=8,
            escalation=EscalationPolicy.durable_queue(capacity=64, max_retries=6, max_backoff_s=8.0),
            seed=1,
        )

    report = benchmark(run)
    assert report.frames_offered == 8 * 100
    assert report.escalations_recovered > 0
    assert report.frames_served + report.frames_dropped == report.frames_offered


def test_micro_fleet_8_cameras_lte_trace(benchmark, deployment, helmet_slice):
    """Time-varying-link hot path: schedule integration on every transfer.

    The saturated fleet on the bundled LTE-like trace with schedule-aware
    estimated admission: every uplink grant resolves its duration through
    the schedule's prefix sums, every downlink integrates from *now*, and
    every admission doom test adds the schedule-integrated remaining-time
    floor — the full cost of the trace-driven data path.
    """
    config = StreamConfig(fps=5.0, duration_s=20.0, poisson=False, max_edge_queue=30)
    scheduled = Deployment(
        edge=deployment.edge,
        cloud=deployment.cloud,
        link=deployment.link.with_rate_schedule(bundled_trace("lte_like")),
        small_model_flops=deployment.small_model_flops,
        big_model_flops=deployment.big_model_flops,
    )

    def run():
        return simulate_fleet(
            cloud_only_scheme(),
            scheduled,
            helmet_slice,
            config,
            cameras=8,
            admission=EstimatedDeadlineAware(freshness_s=2.0),
            seed=1,
        )

    report = benchmark(run)
    assert report.frames_offered == 8 * 100
    assert report.frames_served + report.frames_dropped == report.frames_offered


def test_micro_fleet_8_cameras_constant_schedule(benchmark, deployment, helmet_slice):
    """Zero-overhead contract: a constant schedule is the plain fleet.

    Attaching ``RateSchedule.always(bandwidth)`` must keep the exact
    pre-schedule code path — this case benches that path with the schedule
    attached and pins the result bit-for-bit against the plain link, so the
    2x gate catches both a perf leak and a semantic one.
    """
    config = StreamConfig(fps=5.0, duration_s=20.0, poisson=False, max_edge_queue=30)
    scheduled = Deployment(
        edge=deployment.edge,
        cloud=deployment.cloud,
        link=deployment.link.with_rate_schedule(RateSchedule.always(deployment.link.bandwidth_mbps)),
        small_model_flops=deployment.small_model_flops,
        big_model_flops=deployment.big_model_flops,
    )

    def run():
        return simulate_fleet(
            cloud_only_scheme(),
            scheduled,
            helmet_slice,
            config,
            cameras=8,
            seed=1,
        )

    report = benchmark(run)
    plain = simulate_fleet(
        cloud_only_scheme(), deployment, helmet_slice, config, cameras=8, seed=1
    )
    assert report == plain


def test_micro_fleet_heterogeneous(benchmark, deployment, helmet_slice, half_mask):
    """Per-camera specs: mixed rates, schemes and admission on one loop."""
    base = StreamConfig(fps=5.0, duration_s=20.0, poisson=False, max_edge_queue=30)
    specs = [
        CameraSpec(),
        CameraSpec(config=StreamConfig(fps=10.0, duration_s=20.0, poisson=False, max_edge_queue=30)),
        CameraSpec(scheme=edge_only_scheme()),
        CameraSpec(scheme=cloud_only_scheme(), admission=DropOldest()),
    ]

    def run():
        return simulate_fleet(
            collaborative_scheme(),
            deployment,
            helmet_slice,
            base,
            cameras=specs,
            mask=half_mask,
            seed=1,
        )

    report = benchmark(run)
    assert report.scheme == "mixed"
    # the 10 fps camera's 200th periodic arrival rounds just past the
    # 20 s horizon, hence 199 rather than 200
    assert report.frames_offered == (100 + 199 + 100 + 100)
    assert report.cameras[2].frames_uploaded == 0
