"""Figure 7 bench: discriminator metrics vs area threshold (count fixed at 2)."""

from __future__ import annotations

import numpy as np

from repro.experiments import figure_07_threshold_sweep


def test_fig07_threshold_sweep(benchmark, harness, emit):
    figure = benchmark.pedantic(
        figure_07_threshold_sweep, args=(harness,), rounds=1, iterations=1
    )
    emit(figure, "fig07")

    recalls = np.asarray(figure.series["recall"])
    precisions = np.asarray(figure.series["precision"])
    accuracies = np.asarray(figure.series["accuracy"])

    # Raising the area threshold only adds difficult verdicts: recall is
    # non-decreasing, precision eventually falls.
    assert (np.diff(recalls) >= -1e-9).all()
    assert precisions[-1] <= precisions[np.argmax(accuracies)] + 1e-9
    # At the accuracy optimum the paper reports recall 98.24 % with
    # precision 77.51 %: recall-heavy, precision moderate.
    best = int(np.argmax(accuracies))
    assert recalls[best] > 0.9
    assert 0.6 < precisions[best] <= 1.0
    assert accuracies.max() > 0.78
