"""Ablation 1 (DESIGN.md Sec. 5): feature choice for the discriminator.

Compares the paper's two semantic features (object count + minimum area
ratio) against each feature alone and against a mean-confidence threshold
classifier, all fitted on the same training labels.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.confidence_upload import mean_top1_confidence
from repro.core.cases import label_cases
from repro.core.thresholds import fit_decision_thresholds
from repro.metrics.classify import binary_metrics


def _fit_variants(harness):
    setting = "voc07+12"
    train = harness.dataset(setting, "train")
    small_train = harness.detections("small1", setting, "train")
    labels = label_cases(small_train, harness.detections("ssd", setting, "train"))
    n_predict = np.array([d.count_above(0.5) for d in small_train])
    true_counts = np.array([len(t) for t in train.truths])
    true_min_areas = np.array([t.min_area_ratio for t in train.truths])

    _, _, both = fit_decision_thresholds(n_predict, true_counts, true_min_areas, labels)
    # Count only: area threshold pinned at 0 (step 3 never fires).
    _, _, count_only = fit_decision_thresholds(
        n_predict, true_counts, true_min_areas, labels,
        area_grid=np.array([0.0]),
    )
    # Area only: count threshold pinned far above any scene (step 2 never fires).
    _, _, area_only = fit_decision_thresholds(
        n_predict, true_counts, true_min_areas, labels,
        count_grid=np.array([10_000]),
    )
    # Mean-confidence threshold classifier (no semantic features at all).
    confidences = np.array(
        [mean_top1_confidence(d, train.num_classes) for d in small_train]
    )
    best_conf = None
    for threshold in np.arange(0.0, 1.0, 0.02):
        metrics = binary_metrics(confidences < threshold, labels)
        if best_conf is None or metrics.accuracy > best_conf.accuracy:
            best_conf = metrics
    return {
        "both": both,
        "count_only": count_only,
        "area_only": area_only,
        "confidence": best_conf,
    }


def test_ablation_feature_choice(benchmark, harness):
    variants = benchmark.pedantic(_fit_variants, args=(harness,), rounds=1, iterations=1)

    print()
    print("Ablation: discriminator feature choice (fit accuracy on VOC07+12 train)")
    for name, metrics in variants.items():
        print(
            f"  {name:<12} acc {100 * metrics.accuracy:6.2f}%  "
            f"prec {100 * metrics.precision:6.2f}%  rec {100 * metrics.recall:6.2f}%"
        )

    both = variants["both"]
    # The paper's two-feature rule must not lose to either single feature...
    assert both.accuracy >= variants["count_only"].accuracy - 1e-9
    assert both.accuracy >= variants["area_only"].accuracy - 1e-9
    # ...and must beat the non-semantic confidence classifier.
    assert both.accuracy > variants["confidence"].accuracy
