"""Table II bench: model sizes, pruned ratios and FLOPs (analytic)."""

from __future__ import annotations

import pytest

from repro.experiments import table_02_model_zoo


def test_table02_model_zoo(benchmark, harness, emit):
    result = benchmark(table_02_model_zoo, harness)
    emit(result, "table02")

    ssd = result.row_for("model", "ssd")
    small1 = result.row_for("model", "small1")
    # SSD's fp32 checkpoint: paper reports 100.28 MB; the analytic count is
    # essentially exact (26.3 M parameters).
    assert ssd["size_mib"] == pytest.approx(100.28, abs=1.0)
    assert ssd["gflops"] == pytest.approx(61.19, rel=0.05)
    assert small1["size_mib"] == pytest.approx(18.50, rel=0.15)
    # Every small model is pruned above 80 % (the paper's claim).
    for name in ("small1", "small2", "small3"):
        assert result.row_for("model", name)["pruned_percent"] > 80.0
    # Size ordering: small3 < small2 < small1 << ssd.
    sizes = [result.row_for("model", n)["size_mib"] for n in ("small3", "small2", "small1", "ssd")]
    assert sizes == sorted(sizes)
