"""Table 3 bench: mAP table for small1 under SSD (paper Table 3)."""

from __future__ import annotations

from _shapes import assert_map_table_shape

from repro.experiments import table_03_map_small1


def test_table03_map_small1(benchmark, harness, emit):
    result = benchmark.pedantic(
        table_03_map_small1, args=(harness,), rounds=1, iterations=1
    )
    emit(result, "table03")
    # Paper: upload ratio ~50-52 % on every dataset; e2e mAP between the
    # small and big models and at ~88-95 % of cloud-only.  Our synthetic
    # COCO-18's difficult-case prevalence differs from the real subset, so
    # its upload ratio is allowed a wider band (see EXPERIMENTS.md).
    assert_map_table_shape(result, upload_lo=25.0, upload_hi=70.0)
