"""Table XI bench: real-world Helmet deployment (Jetson Nano + WLAN + server)."""

from __future__ import annotations

from repro.experiments import table_11_helmet_realworld


def test_table11_helmet_realworld(benchmark, harness, emit):
    result = benchmark.pedantic(
        table_11_helmet_realworld, args=(harness,), rounds=1, iterations=1
    )
    emit(result, "table11")

    maps = result.row_for("metric", "mAP")
    counts = result.row_for("metric", "detected_objects")
    times = result.row_for("metric", "total_inference_time_s")
    upload = result.row_for("metric", "upload_ratio_percent")

    # Accuracy ordering: edge-only < ours < cloud-only (paper 75.04 / 86.07 / 92.40).
    assert maps["edge_only"] < maps["ours"] < maps["cloud_only"]
    # Counts: ours close to cloud-only (paper: within ~1.4 %).
    assert counts["ours"] >= 0.90 * counts["cloud_only"]
    # Latency: edge << ours < cloud; ours saves real time vs cloud-only
    # (paper: 32 % saved).
    assert times["edge_only"] < times["ours"] < times["cloud_only"]
    assert times["ours"] <= 0.8 * times["cloud_only"]
    # Bandwidth: a real fraction of frames stays at the edge.
    assert 0.0 < upload["ours"] < 100.0
