"""Table X bench: detected-object counts with YOLOv4 as the big model."""

from __future__ import annotations

from _shapes import assert_counts_table_shape

from repro.experiments import table_10_counts_yolov4


def test_table10_counts_yolov4(benchmark, harness, emit):
    result = benchmark.pedantic(
        table_10_counts_yolov4, args=(harness,), rounds=1, iterations=1
    )
    emit(result, "table10")
    # Paper: e2e keeps ~98.6 % of YOLOv4's detections on average.
    assert_counts_table_shape(result, ratio_floor=93.0)
