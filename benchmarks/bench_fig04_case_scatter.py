"""Figure 4 bench: easy/difficult distribution over (count, min-area-ratio)."""

from __future__ import annotations

import numpy as np

from repro.experiments import figure_04_case_scatter


def test_fig04_case_scatter(benchmark, harness, emit):
    figure = benchmark.pedantic(
        figure_04_case_scatter, args=(harness,), rounds=1, iterations=1
    )
    emit(figure, "fig04")

    easy_counts = np.asarray(figure.series["easy_count"])
    difficult_counts = np.asarray(figure.series["difficult_count"])
    easy_areas = np.asarray(figure.series["easy_min_area"])
    difficult_areas = np.asarray(figure.series["difficult_min_area"])

    # Paper's Fig. 4: difficult cases concentrate at many objects and small
    # minimum area ratios; easy cases at few objects and large areas.
    assert difficult_counts.mean() > easy_counts.mean() * 1.3
    assert np.median(difficult_areas) < np.median(easy_areas) * 0.6
    # Both populations are non-trivial (the split is not degenerate).
    total = easy_counts.size + difficult_counts.size
    assert 0.2 < difficult_counts.size / total < 0.7
