"""Table 14 bench: e2e mAP — blurred-image uploading vs the discriminator."""

from __future__ import annotations

from repro.experiments import table_14_blur_map


def test_table14_blur_map(benchmark, harness, emit):
    result = benchmark.pedantic(
        table_14_blur_map, args=(harness,), rounds=1, iterations=1
    )
    emit(result, "table14")
    # Paper: our semantic-based strategy beats the blurred-image baseline on
    # every dataset at the same upload quota (by 3.5-8 mAP points).
    for row in result.rows:
        assert row["ours_e2e_map"] > row["baseline_e2e_map"], row["setting"]
        assert row["ours_e2e_map"] - row["baseline_e2e_map"] > 1.0, row["setting"]
