"""Transport benchmarks for the zero-copy data plane.

Measures the parent-side cost of moving a finished detection shard between
processes — the pickle pipe (serialise + deserialise, the historical path)
against the shared-memory arena (segment write + memmap adoption) at
500- and 5 000-image scale — plus warm-cache ``Harness.detections`` reads
under the compressed ``.npz`` layout vs the mmap-backed ``.npy`` layout.

Caveat (shared with every parallel number in this repo): the dev container
is 1-core, so the shm wins here measure pure transport mechanics, not the
pipe contention that motivates them at real worker counts.
"""

from __future__ import annotations

import pickle

import pytest

from repro.experiments import Harness, HarnessConfig
from repro.runtime.shm import leaked_segments, shm_supported

needs_shm = pytest.mark.skipif(not shm_supported(), reason="no /dev/shm on this platform")


@pytest.fixture(scope="module")
def batch_500(harness):
    return harness.detections("ssd", "voc07", "test")[:500]


@pytest.fixture(scope="module")
def batch_5000(harness):
    full = harness.detections("ssd", "voc07", "test")
    return full[: min(5000, len(full))]


def _pickle_round_trip(batch):
    return pickle.loads(pickle.dumps(batch, protocol=pickle.HIGHEST_PROTOCOL))


def _shm_round_trip(batch, prefix):
    from repro.detection.batch import DetectionBatch

    return DetectionBatch.from_shared(batch.to_shared(prefix=prefix))


def test_micro_transport_pickle_500(benchmark, batch_500):
    result = benchmark(_pickle_round_trip, batch_500)
    assert len(result) == 500


def test_micro_transport_pickle_5000(benchmark, batch_5000):
    result = benchmark(_pickle_round_trip, batch_5000)
    assert len(result) == len(batch_5000)


@needs_shm
def test_micro_transport_shm_500(benchmark, batch_500):
    result = benchmark(_shm_round_trip, batch_500, "repro-bench-500")
    assert len(result) == 500
    assert leaked_segments("repro-bench-500") == ()


@needs_shm
def test_micro_transport_shm_5000(benchmark, batch_5000):
    result = benchmark(_shm_round_trip, batch_5000, "repro-bench-5000")
    assert len(result) == len(batch_5000)
    assert leaked_segments("repro-bench-5000") == ()


@pytest.mark.parametrize("mmap_cache", [False, True], ids=["npz", "mmap"])
def test_micro_detections_warm_cache(benchmark, mmap_cache, tmp_path_factory):
    """Warm-cache `Harness.detections` read cost: decompress-everything
    (`.npz`) vs lazy mmap views (`.npy` directory), quick-config sizes.
    Each round constructs a fresh harness so the memo cache never hides the
    disk read; the cache itself is warmed once in setup."""
    base = HarnessConfig.quick()
    layout = "mmap" if mmap_cache else "npz"
    cache = tmp_path_factory.mktemp(f"warm-cache-{layout}")
    config = HarnessConfig(
        seed=base.seed,
        train_images=base.train_images,
        test_fraction=base.test_fraction,
        cache_dir=str(cache),
        mmap_cache=mmap_cache,
    )
    with Harness(config) as warmer:
        expected = len(warmer.detections("small1", "voc07", "test"))

    def setup():
        warm = Harness(config)
        warm.dataset("voc07", "test")
        warm.detector("small1", "voc07")
        return (warm,), {}

    def read(warm):
        with warm:
            return warm.detections("small1", "voc07", "test")

    batch = benchmark.pedantic(read, setup=setup, rounds=5, iterations=1)
    assert len(batch) == expected
