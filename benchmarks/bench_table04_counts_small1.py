"""Table 4 bench: detected-object counts for small1 under SSD."""

from __future__ import annotations

from _shapes import assert_counts_table_shape

from repro.experiments import table_04_counts_small1


def test_table04_counts_small1(benchmark, harness, emit):
    result = benchmark.pedantic(
        table_04_counts_small1, args=(harness,), rounds=1, iterations=1
    )
    emit(result, "table04")
    # Paper: the end-to-end scheme keeps >= ~93 % of the cloud-only count.
    assert_counts_table_shape(result, ratio_floor=88.0)
