"""Micro-benchmarks of the closed-loop control plane's hot paths.

The estimated admission policy attaches an ``observe`` hook to every
camera, so each served/failed frame constructs a :class:`FrameEvent` and
updates three EWMAs; the uplink coordinator adds a repeating fleet-wide
sweep on the shared event loop.  Both ride the same saturated 8-camera
workload as ``bench_stream.py``'s fleet cases so regressions in the
observer chain or the sweep cadence show up against the same yardstick.
All cases are harness-free (no detection artifacts) to keep the bench-micro
gate cheap on cold CI runners.
"""

from __future__ import annotations

import pytest

from repro.data import load_dataset
from repro.runtime import (
    JETSON_NANO,
    RTX3060_SERVER,
    WLAN,
    Deployment,
    EstimatedDeadlineAware,
    FleetSpec,
    StreamConfig,
    UplinkCoordinator,
    cloud_only_scheme,
    serve_fleet,
    simulate_fleet,
)

CONFIG = StreamConfig(fps=5.0, duration_s=20.0, poisson=False, max_edge_queue=30)


@pytest.fixture(scope="module")
def helmet_slice():
    return load_dataset("helmet", "test", fraction=0.1)


@pytest.fixture(scope="module")
def deployment():
    return Deployment(
        edge=JETSON_NANO,
        cloud=RTX3060_SERVER,
        link=WLAN,
        small_model_flops=5.6e9,
        big_model_flops=61.2e9,
    )


def test_micro_fleet_8_cameras_estimated(benchmark, deployment, helmet_slice):
    """Observer-chain hot path: EWMA estimates drive the shedding scan.

    Same workload as ``test_micro_fleet_8_cameras_deadline_aware``, but the
    policy learns its completion estimates from per-frame events instead of
    reading simulator queue state — every serve builds a FrameEvent and
    every arrival runs the estimated shed scan.
    """
    admission = EstimatedDeadlineAware(freshness_s=2.0)

    def run():
        return simulate_fleet(
            cloud_only_scheme(),
            deployment,
            helmet_slice,
            CONFIG,
            cameras=8,
            admission=admission,
            seed=1,
        )

    report = benchmark(run)
    assert report.frames_offered == 8 * 100
    assert report.frames_shed > 0
    assert report.frames_served + report.frames_dropped == report.frames_offered


def test_micro_fleet_8_cameras_coordinated(benchmark, deployment, helmet_slice):
    """Fleet-controller hot path: the repeating stalest-first uplink sweep.

    Adds the coordinator's repeating timer (pooled fleet EWMAs + a sweep
    across all eight camera buffers every 0.25 s) on top of the estimated
    admission workload.
    """
    spec = FleetSpec(
        scheme=cloud_only_scheme(),
        config=CONFIG,
        cameras=8,
        admission=EstimatedDeadlineAware(freshness_s=2.0),
        controller=UplinkCoordinator(freshness_s=2.0),
    )

    def run():
        return serve_fleet(deployment, helmet_slice, spec, seed=1)

    report = benchmark(run)
    assert report.frames_offered == 8 * 100
    assert report.frames_shed > 0
    assert report.frames_served + report.frames_dropped == report.frames_offered


def test_fleet_no_controller_path_unchanged(deployment, helmet_slice):
    """The control plane costs nothing when unused: a spec with no
    controller and a stateless admission default produces the identical
    FleetReport as the legacy keyword path (``observers == ()`` — the hot
    path never constructs a FrameEvent).  The timing side of the same claim
    is held by ``test_micro_fleet_8_cameras`` against the checked-in
    baseline."""
    via_spec = serve_fleet(
        deployment,
        helmet_slice,
        FleetSpec(scheme=cloud_only_scheme(), config=CONFIG, cameras=8),
        seed=1,
    )
    via_kwargs = simulate_fleet(
        cloud_only_scheme(), deployment, helmet_slice, CONFIG, cameras=8, seed=1
    )
    assert via_spec == via_kwargs
