"""Table IX bench: mAP with YOLOv4 as the big model (~20 % upload ratio)."""

from __future__ import annotations

from _shapes import assert_map_table_shape

from repro.experiments import table_09_map_yolov4


def test_table09_map_yolov4(benchmark, harness, emit):
    result = benchmark.pedantic(
        table_09_map_yolov4, args=(harness,), rounds=1, iterations=1
    )
    emit(result, "table09")
    # Paper: because YOLOv4 produces far fewer difficult cases, a high
    # end-to-end mAP is reached with only ~21 % of images uploaded.
    assert_map_table_shape(
        result, upload_lo=5.0, upload_hi=40.0, e2e_fraction_floor=0.88
    )
    # The YOLO pairing uploads far less than the SSD pairing's ~50 %.
    assert result.rows[-1]["upload_percent"] < 40.0
