"""Ablation 4 (DESIGN.md Sec. 5): the sub-threshold confidence signal.

The discriminator's estimated-count feature relies on the Fig. 6 phenomenon:
missed objects still emit low-confidence boxes.  This bench rebuilds small
model 1 with that signal removed (``miss_visibility = 0``, recalibrated to
the same recall) and measures how far the deployed discriminator falls.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.cases import label_cases
from repro.core.discriminator import DifficultCaseDiscriminator
from repro.simulate.calibrate import calibrate_profile
from repro.simulate.detector import SimulatedDetector
from repro.simulate.presets import RECALL_TARGETS


def _compare(harness):
    setting = "voc07+12"
    train = harness.dataset(setting, "train")
    test = harness.dataset(setting, "test")
    big_train = harness.detections("ssd", setting, "train")
    big_test = harness.detections("ssd", setting, "test")

    # Default small model (with the sub-threshold signal).
    small_train = harness.detections("small1", setting, "train")
    small_test = harness.detections("small1", setting, "test")
    _, default_report = DifficultCaseDiscriminator.fit(small_train, big_train, train.truths)
    default_disc, _ = harness.discriminator("small1", "ssd", setting)
    default_test = default_disc.evaluate(small_test, big_test)

    # Muted small model: identical recall, no sub-threshold boxes.
    base = harness.detector("small1", setting)
    muted_profile = replace(base.profile, name="small1-muted@voc07+12", miss_visibility=0.0)
    muted_profile = calibrate_profile(
        muted_profile,
        train,
        RECALL_TARGETS[("small1", setting)],
        num_classes=train.num_classes,
        seed=harness.config.seed,
    )
    muted = SimulatedDetector(
        profile=muted_profile,
        num_classes=train.num_classes,
        seed=harness.config.seed,
    )
    muted_train = muted.detect_split(train)
    muted_test = muted.detect_split(test)
    muted_disc, muted_report = DifficultCaseDiscriminator.fit(muted_train, big_train, train.truths)
    muted_metrics = muted_disc.evaluate(muted_test, big_test)
    # Labels differ per small model; recompute for reporting only.
    label_cases(muted_test, big_test)
    return default_test, muted_metrics, default_report, muted_report


def test_ablation_subthreshold_signal(benchmark, harness):
    default_m, muted_m, _, _ = benchmark.pedantic(
        _compare, args=(harness,), rounds=1, iterations=1
    )

    print()
    print("Ablation: sub-threshold miss signal (deployed discriminator, test split)")
    print(f"  with signal:    acc {100 * default_m.accuracy:6.2f}%  rec {100 * default_m.recall:6.2f}%")
    print(f"  without signal: acc {100 * muted_m.accuracy:6.2f}%  rec {100 * muted_m.recall:6.2f}%")

    # Without the Fig. 6 signal the estimated count degenerates to the served
    # count: the uncertainty gate loses most of its power and recall drops
    # hard.
    assert muted_m.recall < default_m.recall - 0.15
