"""Table 13 bench: detected objects — random uploading vs ours."""

from __future__ import annotations

from repro.experiments import table_13_random_counts


def test_table13_random_counts(benchmark, harness, emit):
    result = benchmark.pedantic(
        table_13_random_counts, args=(harness,), rounds=1, iterations=1
    )
    emit(result, "table13")
    # Paper: ours keeps a higher share of the cloud-only detections than the
    # random baseline on every dataset (paper: ours ~94 % vs ~74-77 %).
    for row in result.rows[:-1]:
        assert row["ours_ratio_percent"] > row["baseline_ratio_percent"], row["setting"]
    average = result.rows[-1]
    assert average["ours_ratio_percent"] - average["baseline_ratio_percent"] > 3.0
