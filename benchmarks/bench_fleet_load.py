"""Fleet-scale load benchmarks: columnar traces and latency percentiles.

The columnar :class:`FrameTrace` exists so fleet runs in the hundreds-to-
thousands of cameras stay cheap to simulate *and* to read back; these cases
track that claim.  Each run serves a cloud-only fleet against one shared
uplink and cloud GPU — the saturation regime where per-frame bookkeeping
dominates — then reads p50/p95/p99 per-frame latency straight off the
fleet trace.

All cases are harness-free (no detection artifacts): the load cases log
traces through an all-empty detection batch, and the rolling-evaluation
case scores synthetic detections derived from the ground truth, so the
bench-micro gate stays cheap on cold CI runners.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import load_dataset
from repro.detection import DetectionBatch
from repro.metrics import rolling_quality
from repro.runtime import (
    JETSON_NANO,
    RTX3060_SERVER,
    WLAN,
    Deployment,
    StreamConfig,
    cloud_only_scheme,
    simulate_fleet,
)


@pytest.fixture(scope="module")
def helmet_slice():
    return load_dataset("helmet", "test", fraction=0.1)


@pytest.fixture(scope="module")
def deployment():
    return Deployment(
        edge=JETSON_NANO,
        cloud=RTX3060_SERVER,
        link=WLAN,
        small_model_flops=5.6e9,
        big_model_flops=61.2e9,
    )


@pytest.fixture(scope="module")
def empty_batch(helmet_slice):
    """Zero detections per record: serving logs full traces with no
    per-segment payload, keeping the load cases pure engine + trace."""
    truth = helmet_slice.truth_batch
    return DetectionBatch(
        image_ids=truth.image_ids,
        boxes=np.zeros((0, 4)),
        scores=np.zeros(0),
        labels=np.zeros(0, dtype=np.int64),
        offsets=np.zeros(len(truth) + 1, dtype=np.int64),
        detector="empty",
    )


@pytest.fixture(scope="module")
def synthetic_batch(helmet_slice):
    """Ground-truth boxes with random scores and 20% flipped labels: a
    deterministic TP/FP mix that exercises the greedy matching without any
    detection artifacts."""
    truth = helmet_slice.truth_batch
    rng = np.random.default_rng(7)
    scores = rng.uniform(0.05, 1.0, truth.labels.shape[0])
    segments = truth.image_indices()
    order = np.lexsort((-scores, segments))  # score-descending within each segment
    labels = truth.labels[order]
    flip = rng.random(labels.shape[0]) < 0.2
    labels = np.where(flip, (labels + 1) % helmet_slice.num_classes, labels)
    return DetectionBatch(
        image_ids=truth.image_ids,
        boxes=truth.boxes[order],
        scores=scores[order],
        labels=labels,
        offsets=truth.offsets,
        detector="synthetic",
    )


def test_load_fleet_100_cameras_percentiles(benchmark, deployment, helmet_slice, empty_batch):
    """100 cameras x 60 s on one uplink: simulate, then read p50/p95/p99."""
    config = StreamConfig(fps=1.0, duration_s=60.0, poisson=False, max_edge_queue=30)

    def run():
        report = simulate_fleet(
            cloud_only_scheme(),
            deployment,
            helmet_slice,
            config,
            cameras=100,
            detections=empty_batch,
            seed=1,
        )
        return report, report.latency_percentiles()

    report, points = benchmark(run)
    assert report.frames_offered == 100 * 59  # periodic arrivals: 1/fps .. <60 s
    assert len(report.trace()) == report.frames_offered
    assert 0.0 < points[50.0] <= points[95.0] <= points[99.0]


def test_load_fleet_1000_cameras_percentiles(benchmark, deployment, helmet_slice, empty_batch):
    """1000 cameras x 60 s: the fleet-scale stress case behind the trace
    layer — 29k offered frames through one shared uplink and cloud GPU."""
    config = StreamConfig(fps=0.5, duration_s=60.0, poisson=False, max_edge_queue=30)

    def run():
        report = simulate_fleet(
            cloud_only_scheme(),
            deployment,
            helmet_slice,
            config,
            cameras=1000,
            detections=empty_batch,
            seed=1,
        )
        return report, report.latency_percentiles()

    report, points = benchmark(run)
    assert report.frames_offered == 1000 * 29  # periodic arrivals: 2 s .. <60 s
    assert len(report.trace()) == report.frames_offered
    assert len(report.cameras) == 1000
    assert 0.0 < points[50.0] <= points[95.0] <= points[99.0]


def test_load_rolling_quality_8_camera_fleet(benchmark, deployment, helmet_slice, synthetic_batch):
    """Vectorized rolling evaluation of a Table XVIII-shaped fleet run
    (simulation outside the timed region: this tracks the evaluator)."""
    config = StreamConfig(fps=1.5, poisson=True, duration_s=40.0)
    report = simulate_fleet(
        cloud_only_scheme(),
        deployment,
        helmet_slice,
        config,
        cameras=8,
        detections=synthetic_batch,
        seed=5,
    )

    def run():
        return rolling_quality(report, helmet_slice, window_s=8.0, duration_s=40.0, freshness_s=2.0)

    windows = benchmark(run)
    assert len(windows) == 5
    assert any(window.map_percent > 0.0 for window in windows)
    assert all(window.frames == window.served + window.dropped + window.stale for window in windows)
