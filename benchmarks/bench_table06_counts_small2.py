"""Table 6 bench: detected-object counts for small2 under SSD."""

from __future__ import annotations

from _shapes import assert_counts_table_shape

from repro.experiments import table_06_counts_small2


def test_table06_counts_small2(benchmark, harness, emit):
    result = benchmark.pedantic(
        table_06_counts_small2, args=(harness,), rounds=1, iterations=1
    )
    emit(result, "table06")
    # Paper: the end-to-end scheme keeps >= ~93 % of the cloud-only count.
    assert_counts_table_shape(result, ratio_floor=88.0)
