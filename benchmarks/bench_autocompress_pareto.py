"""Extension bench: the automatic-compression Pareto front (Sec. VII).

Sweeps edge-device size budgets and checks that the search produces a clean
capability/size Pareto front anchored at the hand-designed small model 1.
"""

from __future__ import annotations

from repro.zoo.autocompress import search_configuration
from repro.zoo.ssd import build_small_model_1


def _sweep():
    budgets = (4.0, 8.0, 12.0, 18.5, 30.0)
    return {budget: search_configuration(size_budget_mib=budget) for budget in budgets}


def test_autocompress_pareto(benchmark):
    results = benchmark(_sweep)

    print()
    print("Automatic compression Pareto front (size budget -> best candidate):")
    for budget, result in results.items():
        config = result.config
        print(
            f"  <= {budget:5.1f} MiB: {config.base:<13} w={config.width_multiplier:<5g} "
            f"e/{config.extras_divisor} c7={config.conv7_channels:<5d} "
            f"-> {result.spec.size_mib:6.2f} MiB {result.spec.gflops:6.2f} GFLOPs "
            f"area_half={result.predicted_profile.area_half:.3f}"
        )

    budgets = sorted(results)
    # Budgets are respected.
    for budget, result in results.items():
        assert result.spec.size_mib <= budget
    # Compute (the capability proxy) is non-decreasing in the budget, and the
    # predicted small-object response improves (area_half shrinks).
    gflops = [results[b].spec.gflops for b in budgets]
    assert all(b >= a - 1e-9 for a, b in zip(gflops, gflops[1:]))
    area_halves = [results[b].predicted_profile.area_half for b in budgets]
    assert area_halves[0] > area_halves[-1]
    # At small model 1's own budget the search must do at least as well in
    # compute as the paper's hand design.
    hand = build_small_model_1()
    assert results[18.5].spec.gflops >= hand.gflops * 0.8
