"""Suite-level fan-out benchmarks.

Measures the scheduler that overlaps whole ``(model, setting, split)``
detection artifacts on the harness's persistent worker pool — the
cross-artifact counterpart of the within-split sharding measured in
``bench_micro``.  Worker count comes from ``REPRO_WORKERS``; on the 1-core
dev container the parallel numbers are an overhead bound, so quote speedups
from multi-core hardware (the ``suite-parallel`` CI job proves exactness
there, and this bench measures the wall time).
"""

from __future__ import annotations

from repro.experiments import Harness, HarnessConfig
from repro.experiments.suite import prefetch_detections, suite_artifacts


def test_suite_prefetch_quick_cold(benchmark, tmp_path_factory):
    """Cold-cache prefetch of a cross-model artifact mix at quick scale."""
    base = HarnessConfig.quick()
    artifacts = (
        ("small1", "voc07", "test"),
        ("ssd", "voc07", "test"),
        ("small1", "voc07", "train"),
        ("ssd", "voc07", "train"),
    )

    def setup():
        cache = tmp_path_factory.mktemp("suite-cold")
        config = HarnessConfig(
            seed=base.seed,
            train_images=base.train_images,
            test_fraction=base.test_fraction,
            cache_dir=str(cache),
            cache_shard_size=256,
        )
        cold = Harness(config)
        for model, setting, split in artifacts:
            cold.dataset(setting, split)
            cold.detector(model, setting)
        return (cold,), {}

    def prefetch(cold):
        with cold:
            return prefetch_detections(cold, artifacts)

    produced = benchmark.pedantic(prefetch, setup=setup, rounds=3, iterations=1)
    assert tuple(produced) == artifacts


def test_suite_prefetch_full_scale(benchmark, harness):
    """Prefetch every table/figure artifact on the shared full-scale harness.

    Cold on a fresh checkout (this is the headline suite fan-out number),
    warm when ``.repro_cache`` already holds the shards — both are useful:
    cold measures production overlap, warm measures plan-and-load overhead.
    """
    keys = suite_artifacts()
    produced = benchmark.pedantic(prefetch_detections, args=(harness, keys), rounds=1, iterations=1)
    assert tuple(produced) == keys
