"""Figure 9 bench: detected objects under different upload ratios."""

from __future__ import annotations

import numpy as np

from repro.experiments import figure_09_counts_vs_upload


def test_fig09_counts_vs_upload(benchmark, harness, emit):
    figure = benchmark.pedantic(
        figure_09_counts_vs_upload, args=(harness,), rounds=1, iterations=1
    )
    emit(figure, "fig09")

    counts = np.asarray(figure.series["e2e_detected"])
    fraction = np.asarray(figure.series["fraction_of_cloud_only"])

    # Counts rise slowly and monotonically with the upload ratio.
    assert (np.diff(counts) >= -counts[0] * 0.01).all()
    # Paper: at 50 % upload, >= 94 % of the cloud-only count; we allow a
    # small margin for the synthetic substrate.
    assert fraction[5] >= 0.90
    assert fraction[-1] == 1.0
    # Same knee shape as Fig. 8: diminishing returns past 50 %.
    assert counts[5] - counts[0] > 1.5 * (counts[10] - counts[5])
