"""Table 12 bench: e2e mAP — random uploading vs the discriminator."""

from __future__ import annotations

from repro.experiments import table_12_random_map


def test_table12_random_map(benchmark, harness, emit):
    result = benchmark.pedantic(
        table_12_random_map, args=(harness,), rounds=1, iterations=1
    )
    emit(result, "table12")
    # Paper: our semantic-based strategy beats the random baseline on
    # every dataset at the same upload quota (by 3.5-8 mAP points).
    for row in result.rows:
        assert row["ours_e2e_map"] > row["baseline_e2e_map"], row["setting"]
        assert row["ours_e2e_map"] - row["baseline_e2e_map"] > 1.0, row["setting"]
