"""Ablation 3 (DESIGN.md Sec. 5): fitted vs fixed noise-filter threshold.

The paper fits the confidence threshold by minimising Eq. 1's count loss.
This bench compares the fitted optimum against fixed alternatives (0.25 and
0.45) on the count-estimation loss and on downstream verdict accuracy.
"""

from __future__ import annotations

import numpy as np

from repro.core.cases import label_cases
from repro.core.features import extract_feature_arrays
from repro.core.thresholds import count_loss_curve, decide_rule
from repro.metrics.classify import binary_metrics


def _evaluate(harness):
    setting = "voc07+12"
    discriminator, _ = harness.discriminator("small1", "ssd", setting)
    train = harness.dataset(setting, "train")
    small_train = harness.detections("small1", setting, "train")
    small_test = harness.detections("small1", setting, "test")
    labels = label_cases(small_test, harness.detections("ssd", setting, "test"))

    fitted = discriminator.confidence_threshold
    candidates = [fitted, 0.25, 0.45]
    grid, losses = count_loss_curve(small_train, train.truths, grid=np.asarray(candidates))
    rows = []
    for threshold, loss in zip(grid, losses):
        n_predict, n_estimated, min_area = extract_feature_arrays(small_test, float(threshold))
        verdicts = decide_rule(
            n_predict,
            n_estimated,
            min_area,
            discriminator.count_threshold,
            discriminator.area_threshold,
        )
        metrics = binary_metrics(verdicts, labels)
        rows.append(
            {
                "threshold": float(threshold),
                "count_loss": float(loss) / len(train),
                "accuracy": metrics.accuracy,
                "recall": metrics.recall,
            }
        )
    return rows


def test_ablation_confidence_threshold(benchmark, harness):
    rows = benchmark.pedantic(_evaluate, args=(harness,), rounds=1, iterations=1)

    print()
    print("Ablation: noise-filter confidence threshold (fitted vs fixed)")
    for row in rows:
        print(
            f"  t={row['threshold']:.2f}  count-loss/img {row['count_loss']:.3f}  "
            f"verdict acc {100 * row['accuracy']:6.2f}%  rec {100 * row['recall']:6.2f}%"
        )

    fitted, fixed_mid, fixed_high = rows
    # The fitted threshold minimises the per-image count loss (Eq. 1)...
    assert fitted["count_loss"] <= fixed_mid["count_loss"] + 1e-9
    assert fitted["count_loss"] <= fixed_high["count_loss"] + 1e-9
    # ...and a grossly misplaced threshold (0.45: sub-threshold misses are
    # filtered out with the noise) costs verdict recall.
    assert fitted["recall"] > fixed_high["recall"]
