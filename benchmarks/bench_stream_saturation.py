"""Extension bench: streaming saturation (the paper's video motivation).

Sweeps the frame rate and checks the phenomenon that justifies the whole
framework: cloud-only saturates the WLAN uplink and collapses, while the
collaborative scheme — uploading only the discriminator's difficult cases —
keeps serving in near-real-time at multiples of that rate.
"""

from __future__ import annotations

from repro.runtime import (
    JETSON_NANO,
    RTX3060_SERVER,
    WLAN,
    Deployment,
    StreamConfig,
    StreamSimulator,
)
from repro.zoo.registry import build_model


def _sweep(harness):
    dataset = harness.dataset("helmet", "test")
    run = harness.system_run("small1", "ssd", "helmet")
    deployment = Deployment(
        edge=JETSON_NANO,
        cloud=RTX3060_SERVER,
        link=WLAN,
        small_model_flops=float(build_model("small1", num_classes=2).flops),
        big_model_flops=float(build_model("ssd", num_classes=2).flops),
    )
    simulator = StreamSimulator(deployment, dataset, seed=harness.config.seed)
    rows = {}
    for fps in (2.0, 5.0, 10.0):
        config = StreamConfig(fps=fps, duration_s=45.0)
        rows[fps] = simulator.compare(config, run.uploaded)
    return rows


def test_stream_saturation(benchmark, harness):
    rows = benchmark.pedantic(_sweep, args=(harness,), rounds=1, iterations=1)

    print()
    print("Streaming sweep (helmet, WLAN):")
    for fps, reports in rows.items():
        for name, report in reports.items():
            print(
                f"  fps {fps:4.0f} {name:<14} p50 {1000 * report.latency.p50:8.1f}ms "
                f"drops {100 * report.drop_rate:5.1f}%  "
                f"uplink {100 * report.uplink_utilization:5.1f}%"
            )

    low, mid, high = rows[2.0], rows[5.0], rows[10.0]
    # At low rate everything keeps up.
    assert low["cloud"].drop_rate == 0.0
    # At 10 fps cloud-only has saturated the uplink: drops and/or multi-second
    # median latency — while the collaborative scheme stays interactive.
    assert high["cloud"].uplink_utilization > 0.95
    assert high["cloud"].drop_rate > 0.1 or high["cloud"].latency.p50 > 2.0
    assert high["collaborative"].drop_rate == 0.0
    assert high["collaborative"].latency.p50 < 0.5
    # Collaborative median latency tracks the edge path at every rate.
    for reports in (low, mid, high):
        assert reports["collaborative"].latency.p50 <= reports["cloud"].latency.p50
