"""Extension bench: budget-constrained fitting and the online controller.

Checks the two deployment extensions of the discriminator: (a) the offline
budget fit trades recall for bandwidth monotonically, and (b) the online
integral controller holds a drifting stream at its upload target.
"""

from __future__ import annotations

import numpy as np

from repro.core.adaptive import BudgetController, fit_for_budget
from repro.core.cases import label_cases
from repro.core.features import extract_feature_arrays


def _run(harness):
    setting = "voc07+12"
    discriminator, _ = harness.discriminator("small1", "ssd", setting)
    small_train = harness.detections("small1", setting, "train")
    labels = label_cases(small_train, harness.detections("ssd", setting, "train"))
    n_predict, n_estimated, min_area = extract_feature_arrays(small_train, discriminator.confidence_threshold)
    budget_fits = {
        budget: fit_for_budget(n_predict, n_estimated, min_area, labels, budget)
        for budget in (0.2, 0.35, 0.5, 0.7)
    }

    controller = BudgetController(discriminator, target_ratio=0.3, gain=0.08)
    for dets in harness.detections("small1", setting, "test"):
        controller.decide(dets)
    return budget_fits, controller


def test_adaptive_budget(benchmark, harness):
    budget_fits, controller = benchmark.pedantic(
        _run, args=(harness,), rounds=1, iterations=1
    )

    print()
    print("Budget-constrained fits (VOC07+12 train):")
    for budget, fit in budget_fits.items():
        print(
            f"  budget {100 * budget:3.0f}%: upload {100 * fit.expected_upload_ratio:5.1f}% "
            f"recall {100 * fit.recall:5.1f}% precision {100 * fit.precision:5.1f}% "
            f"(count<={fit.count_threshold}, area<{fit.area_threshold:.2f})"
        )
    print(
        f"online controller: target 30.0%, realised "
        f"{100 * controller.realised_ratio:.1f}% over {controller.decisions} frames"
    )

    # Every fit respects its budget and recall grows with the budget.
    recalls = []
    for budget, fit in budget_fits.items():
        assert fit.expected_upload_ratio <= budget + 1e-9
        recalls.append(fit.recall)
    assert all(b >= a - 1e-9 for a, b in zip(recalls, recalls[1:]))
    # The controller holds the stream near its target.
    assert controller.realised_ratio == np.clip(controller.realised_ratio, 0.2, 0.4)
