"""Micro-benchmarks of the library's hot paths.

Unlike the table/figure benches (one-shot, full-scale), these measure
steady-state throughput of the kernels every experiment leans on: IoU, NMS,
per-image detection simulation, per-image discrimination, split-level mAP
evaluation, and the structure-of-arrays batch operations (construction,
feature extraction, split verdicts) that back them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.features import extract_feature_arrays
from repro.detection.batch import DetectionBatch, DetectionBatchBuilder
from repro.detection.boxes import iou_matrix
from repro.detection.nms import nms_indices
from repro.experiments import Harness, HarnessConfig
from repro.metrics.voc_ap import mean_average_precision


@pytest.fixture(scope="module")
def random_boxes():
    rng = np.random.default_rng(0)
    mins = rng.uniform(0, 0.7, size=(200, 2))
    sizes = rng.uniform(0.02, 0.3, size=(200, 2))
    boxes = np.concatenate([mins, np.minimum(mins + sizes, 1.0)], axis=1)
    scores = rng.uniform(0.05, 1.0, size=200)
    return boxes, scores


def test_micro_iou_matrix_200x200(benchmark, random_boxes):
    boxes, _ = random_boxes
    result = benchmark(iou_matrix, boxes, boxes)
    assert result.shape == (200, 200)


def test_micro_nms_200_boxes(benchmark, random_boxes):
    boxes, scores = random_boxes
    keep = benchmark(nms_indices, boxes, scores, 0.45)
    assert keep.size >= 1


def test_micro_detect_one_image(benchmark, harness):
    detector = harness.detector("small1", "voc07")
    record = harness.dataset("voc07", "test").records[0]
    detections = benchmark(detector.detect, record)
    assert detections.image_id == record.image_id


def test_micro_discriminator_decide(benchmark, harness):
    discriminator, _ = harness.discriminator("small1", "ssd", "voc07")
    detections = harness.detections("small1", "voc07", "test")[0]
    verdict = benchmark(discriminator.decide, detections)
    assert verdict in (True, False)


def test_micro_map_500_images(benchmark, harness):
    dataset = harness.dataset("voc07", "test").subset(500)
    served = harness.detections("ssd", "voc07", "test")[:500].above(0.5)
    value = benchmark.pedantic(
        mean_average_precision,
        args=(served, dataset.truths, dataset.num_classes),
        rounds=3,
        iterations=1,
    )
    assert 0.0 < value < 100.0


def test_micro_batch_from_list(benchmark, harness):
    detections = harness.detections("ssd", "voc07", "test")[:500].to_list()
    batch = benchmark(DetectionBatch.from_list, detections)
    assert len(batch) == 500


def test_micro_builder_append_500_images(benchmark, harness):
    """Streaming accumulation throughput: per-image raw-array appends into
    the amortised-growth builder (the shard-worker / stream-collector path)."""
    batch = harness.detections("ssd", "voc07", "test")[:500]
    segments = [(d.image_id, d.boxes, d.scores, d.labels) for d in batch]

    def accumulate():
        builder = DetectionBatchBuilder(detector=batch.detector)
        for image_id, boxes, scores, labels in segments:
            builder.append(image_id, boxes, scores, labels)
        return builder.build()

    result = benchmark(accumulate)
    assert len(result) == 500
    assert result.num_boxes == batch.num_boxes


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_micro_detections_cold_cache(benchmark, workers, tmp_path_factory):
    """End-to-end `Harness.detections` wall time on a cold disk cache at
    1/2/4 workers (quick-config split sizes; dataset pre-materialised so the
    timing isolates detection production + cache persistence)."""
    base = HarnessConfig.quick()

    def setup():
        cache = tmp_path_factory.mktemp(f"cold-cache-{workers}")
        config = HarnessConfig(
            seed=base.seed,
            train_images=base.train_images,
            test_fraction=base.test_fraction,
            cache_dir=str(cache),
            workers=workers,
        )
        cold = Harness(config)
        cold.dataset("voc07", "test")
        cold.detector("small1", "voc07")
        return (cold,), {}

    def produce(cold):
        # Context-managed so each round's worker pool is reaped, not leaked
        # into the rest of the benchmark session.
        with cold:
            return cold.detections("small1", "voc07", "test")

    batch = benchmark.pedantic(produce, setup=setup, rounds=3, iterations=1)
    assert len(batch) == 397  # quick-config voc07 test split


def test_micro_features_batched_500_images(benchmark, harness):
    batch = harness.detections("small1", "voc07", "test")[:500]
    n_predict, n_estimated, min_area = benchmark(extract_feature_arrays, batch, 0.2)
    assert n_predict.shape == n_estimated.shape == min_area.shape == (500,)


def test_micro_decide_split_batched_500_images(benchmark, harness):
    discriminator, _ = harness.discriminator("small1", "ssd", "voc07")
    batch = harness.detections("small1", "voc07", "test")[:500]
    verdicts = benchmark(discriminator.decide_split, batch)
    assert verdicts.shape == (500,)
