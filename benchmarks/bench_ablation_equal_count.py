"""Ablation 2 (DESIGN.md Sec. 5): the step-1 equal-count early exit.

Sec. V.C.2's first step declares an image easy when the served count equals
the noise-filtered estimate.  Removing it turns the rule into a plain
(count OR area) test; this bench quantifies what the early exit buys.
"""

from __future__ import annotations

from repro.core.cases import label_cases
from repro.core.features import extract_feature_arrays
from repro.metrics.classify import binary_metrics


def _compare(harness):
    setting = "voc07+12"
    discriminator, _ = harness.discriminator("small1", "ssd", setting)
    small_test = harness.detections("small1", setting, "test")
    labels = label_cases(small_test, harness.detections("ssd", setting, "test"))
    n_predict, n_estimated, min_area = extract_feature_arrays(small_test, discriminator.confidence_threshold)
    with_step1 = (n_predict != n_estimated) & (
        (n_estimated > discriminator.count_threshold)
        | (min_area < discriminator.area_threshold)
    )
    without_step1 = (n_estimated > discriminator.count_threshold) | (min_area < discriminator.area_threshold)
    return (
        binary_metrics(with_step1, labels),
        binary_metrics(without_step1, labels),
        float(with_step1.mean()),
        float(without_step1.mean()),
    )


def test_ablation_equal_count_exit(benchmark, harness):
    with_m, without_m, upload_with, upload_without = benchmark.pedantic(
        _compare, args=(harness,), rounds=1, iterations=1
    )

    print()
    print("Ablation: step-1 equal-count early exit (VOC07+12 test)")
    print(f"  with step 1:    acc {100 * with_m.accuracy:6.2f}%  upload {100 * upload_with:5.1f}%")
    print(f"  without step 1: acc {100 * without_m.accuracy:6.2f}%  upload {100 * upload_without:5.1f}%")

    # Without the early exit, every small/crowded-but-well-handled image is
    # uploaded: bandwidth rises substantially...
    assert upload_without > upload_with + 0.10
    # ...while accuracy does not improve (the exit only removes false alarms).
    assert with_m.accuracy >= without_m.accuracy - 0.01
