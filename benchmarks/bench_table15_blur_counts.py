"""Table 15 bench: detected objects — blurred-image uploading vs ours."""

from __future__ import annotations

from repro.experiments import table_15_blur_counts


def test_table15_blur_counts(benchmark, harness, emit):
    result = benchmark.pedantic(
        table_15_blur_counts, args=(harness,), rounds=1, iterations=1
    )
    emit(result, "table15")
    # Paper: ours keeps a higher share of the cloud-only detections than the
    # blurred-image baseline on every dataset (paper: ours ~94 % vs ~74-77 %).
    for row in result.rows[:-1]:
        assert row["ours_ratio_percent"] > row["baseline_ratio_percent"], row["setting"]
    average = result.rows[-1]
    assert average["ours_ratio_percent"] - average["baseline_ratio_percent"] > 3.0
