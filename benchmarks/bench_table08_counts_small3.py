"""Table 8 bench: detected-object counts for small3 under SSD."""

from __future__ import annotations

from _shapes import assert_counts_table_shape

from repro.experiments import table_08_counts_small3


def test_table08_counts_small3(benchmark, harness, emit):
    result = benchmark.pedantic(
        table_08_counts_small3, args=(harness,), rounds=1, iterations=1
    )
    emit(result, "table08")
    # Paper: the end-to-end scheme keeps >= ~93 % of the cloud-only count.
    assert_counts_table_shape(result, ratio_floor=88.0)
